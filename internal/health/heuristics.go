package health

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// Heuristic ranks the changes of a topological difference by their
// potential negative impact on the experiment's and application's
// health state (Section 5.5). Higher scores rank first.
type Heuristic interface {
	// Name identifies the heuristic variation in reports.
	Name() string
	// Score assigns an impact score to every change of the diff,
	// index-aligned with d.Changes.
	Score(d *Diff) []float64
}

// Rank applies a heuristic and returns the changes ordered by
// descending score (ties broken by change ID for determinism).
func Rank(h Heuristic, d *Diff) []Change {
	scored := RankScored(h, d)
	out := make([]Change, len(scored))
	for i, sc := range scored {
		out[i] = sc.Change
	}
	return out
}

// ScoredChange is one change with its heuristic impact score.
type ScoredChange struct {
	Change
	Score float64
}

// RankScored is Rank keeping each change's score, which the live
// assessment surfaces so operators see how decisively a change ranked.
func RankScored(h Heuristic, d *Diff) []ScoredChange {
	scores := h.Score(d)
	idx := make([]int, len(d.Changes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return d.Changes[idx[a]].ID() < d.Changes[idx[b]].ID()
	})
	out := make([]ScoredChange, len(idx))
	for i, j := range idx {
		out[i] = ScoredChange{Change: d.Changes[j], Score: scores[j]}
	}
	return out
}

// HeuristicByName resolves one of the six heuristic variations by its
// Name() — the form the DSL's `heuristic` attribute uses. The empty
// name resolves to the default (subtree-weighted, which needs no
// latency counterpart and is therefore decisive earliest).
func HeuristicByName(name string) (Heuristic, error) {
	if name == "" {
		return SubtreeComplexity{DepthWeighted: true}, nil
	}
	for _, h := range AllHeuristics() {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("health: unknown heuristic %q (known: %s)", name, strings.Join(HeuristicNames(), ", "))
}

// HeuristicNames lists the known heuristic variations in order.
func HeuristicNames() []string {
	all := AllHeuristics()
	names := make([]string, len(all))
	for i, h := range all {
		names[i] = h.Name()
	}
	return names
}

// AllHeuristics returns the six variations evaluated in Section 5.7:
// two subtree-complexity variants, two response-time variants, and two
// hybrid weightings.
func AllHeuristics() []Heuristic {
	return []Heuristic{
		SubtreeComplexity{},
		SubtreeComplexity{DepthWeighted: true},
		ResponseTimeAnalysis{},
		ResponseTimeAnalysis{Relative: true},
		Hybrid{Alpha: 0.5},
		Hybrid{Alpha: 0.7},
	}
}

// SubtreeComplexity scores a change by the uncertainty-weighted
// complexity of the interaction subtree hanging off the changed node
// (Section 5.5.3): the more services a change can influence downstream,
// the higher its potential impact.
type SubtreeComplexity struct {
	// DepthWeighted additionally weighs the subtree's depth and edge
	// count, favoring deep call chains over broad fan-outs of leaves.
	DepthWeighted bool
}

var _ Heuristic = SubtreeComplexity{}

// Name implements Heuristic.
func (h SubtreeComplexity) Name() string {
	if h.DepthWeighted {
		return "subtree-weighted"
	}
	return "subtree-size"
}

// Score implements Heuristic.
func (h SubtreeComplexity) Score(d *Diff) []float64 {
	out := make([]float64, len(d.Changes))
	for i, c := range d.Changes {
		g := d.Exp
		if c.Type == ChangeRemoveCall {
			// Removed interactions only exist in the baseline graph.
			g = d.Base
		}
		size := float64(len(g.Subtree(c.Subject)))
		score := size
		if h.DepthWeighted {
			depth := float64(g.Depth(c.Subject))
			score = size + 2*depth
		}
		out[i] = c.Type.Uncertainty() * score
	}
	return out
}

// ResponseTimeAnalysis scores a change by the latency degradation
// observed at the changed node relative to the baseline variant
// (Section 5.5.4) — a simple root-cause analysis: a change whose own
// endpoint slowed down more than its callees did is the more likely
// origin of a cascading effect, so downstream slowdowns are discounted
// from each node's delta.
type ResponseTimeAnalysis struct {
	// Relative scores by the degradation ratio instead of absolute
	// milliseconds, which normalizes fast endpoints against slow ones.
	Relative bool
}

var _ Heuristic = ResponseTimeAnalysis{}

// Name implements Heuristic.
func (h ResponseTimeAnalysis) Name() string {
	if h.Relative {
		return "rt-relative"
	}
	return "rt-absolute"
}

// Score implements Heuristic.
func (h ResponseTimeAnalysis) Score(d *Diff) []float64 {
	// The latency index is built once per graph pair (O(V)) so scoring
	// is O(changes × fanout) — this is why heuristic runtime is stable
	// across change frequencies (Fig 5.10).
	idx := newLatencyIndex(d)
	out := make([]float64, len(d.Changes))
	for i, c := range d.Changes {
		delta := h.exclusiveDelta(d, idx, c.Subject)
		if delta < 0 {
			delta = 0 // improvements are future work per Section 1.2.4
		}
		out[i] = c.Type.Uncertainty() * delta
	}
	return out
}

// exclusiveDelta returns the node's latency degradation minus its
// callees' degradations (clamped at 0 per callee): the slowdown the
// node itself is responsible for.
func (h ResponseTimeAnalysis) exclusiveDelta(d *Diff, idx *latencyIndex, nk tracing.NodeKey) float64 {
	own := h.delta(idx, nk)
	var children float64
	for _, callee := range d.Exp.Callees(nk) {
		if cd := h.delta(idx, callee); cd > 0 {
			children += cd
		}
	}
	return own - children
}

// delta returns the latency change of the logical endpoint of nk:
// experimental mean minus baseline mean (ms), or the ratio - 1 when
// Relative.
func (h ResponseTimeAnalysis) delta(idx *latencyIndex, nk tracing.NodeKey) float64 {
	le := logicalEndpoint{nk.Service, nk.Endpoint}
	expMean, expOK := idx.exp[le]
	baseMean, baseOK := idx.base[le]
	if !expOK || !baseOK {
		// New or removed endpoints have no counterpart to compare; the
		// structural heuristics carry those.
		return 0
	}
	if h.Relative {
		if baseMean <= 0 {
			return 0
		}
		return expMean/baseMean - 1
	}
	return expMean - baseMean
}

// latencyIndex precomputes per-logical-endpoint mean latencies (ms) for
// both graphs of a diff.
type latencyIndex struct {
	base map[logicalEndpoint]float64 // call-weighted average across versions
	exp  map[logicalEndpoint]float64 // newest version's mean
}

func newLatencyIndex(d *Diff) *latencyIndex {
	idx := &latencyIndex{
		base: make(map[logicalEndpoint]float64, len(d.Base.Nodes)),
		exp:  make(map[logicalEndpoint]float64, len(d.Exp.Nodes)),
	}
	// Baseline: call-weighted average across versions.
	type acc struct {
		dur   time.Duration
		calls int
	}
	baseAcc := make(map[logicalEndpoint]acc, len(d.Base.Nodes))
	for nk, node := range d.Base.Nodes {
		if node.Calls == 0 {
			continue
		}
		le := logicalEndpoint{nk.Service, nk.Endpoint}
		a := baseAcc[le]
		a.dur += node.TotalDuration
		a.calls += node.Calls
		baseAcc[le] = a
	}
	for le, a := range baseAcc {
		idx.base[le] = float64(a.dur) / float64(a.calls) / float64(time.Millisecond)
	}
	// Experimental: the newest version's behaviour is what the
	// experiment is about (graphs can contain old and new side by side).
	newestVersion := make(map[logicalEndpoint]string, len(d.Exp.Nodes))
	for nk, node := range d.Exp.Nodes {
		if node.Calls == 0 {
			continue
		}
		le := logicalEndpoint{nk.Service, nk.Endpoint}
		if v, ok := newestVersion[le]; !ok || nk.Version > v {
			newestVersion[le] = nk.Version
			idx.exp[le] = float64(node.MeanDuration()) / float64(time.Millisecond)
		}
	}
	return idx
}

// meanForLogical returns the mean duration (ms) of a logical endpoint
// in a graph. With preferNewest, the lexicographically newest version's
// mean is used — experimental graphs contain both the old and the new
// version of the service under test, and the new version's behaviour is
// what the experiment is about; otherwise versions are averaged
// weighted by call counts.
func meanForLogical(g *topology.Graph, service, endpoint string, preferNewest bool) (float64, bool) {
	var (
		found       bool
		bestVersion string
		bestMean    float64
		totalDur    time.Duration
		totalCalls  int
	)
	for nk, node := range g.Nodes {
		if nk.Service != service || nk.Endpoint != endpoint || node.Calls == 0 {
			continue
		}
		found = true
		if preferNewest {
			if bestVersion == "" || nk.Version > bestVersion {
				bestVersion = nk.Version
				bestMean = float64(node.MeanDuration()) / float64(time.Millisecond)
			}
			continue
		}
		totalDur += node.TotalDuration
		totalCalls += node.Calls
	}
	if !found {
		return 0, false
	}
	if preferNewest {
		return bestMean, true
	}
	return float64(totalDur) / float64(totalCalls) / float64(time.Millisecond), true
}

// Hybrid combines the structural and temporal evidence (Section 5.5.5):
// each heuristic's scores are min-max normalized over the diff and
// mixed with weight Alpha on the subtree component.
type Hybrid struct {
	// Alpha is the subtree-complexity weight in [0,1]; the evaluation
	// uses 0.5 and 0.7.
	Alpha float64
	// DepthWeighted and Relative select the underlying variants.
	DepthWeighted bool
	Relative      bool
}

var _ Heuristic = Hybrid{}

// Name implements Heuristic.
func (h Hybrid) Name() string {
	return "hybrid-" + trimFloat(h.alpha())
}

func (h Hybrid) alpha() float64 {
	if h.Alpha <= 0 || h.Alpha > 1 {
		return 0.5
	}
	return h.Alpha
}

// Score implements Heuristic.
func (h Hybrid) Score(d *Diff) []float64 {
	structural := normalize(SubtreeComplexity{DepthWeighted: h.DepthWeighted}.Score(d))
	temporal := normalize(ResponseTimeAnalysis{Relative: h.Relative}.Score(d))
	a := h.alpha()
	out := make([]float64, len(d.Changes))
	for i := range out {
		out[i] = a*structural[i] + (1-a)*temporal[i]
	}
	return out
}

// normalize min-max scales scores to [0,1] (all-equal maps to 0).
func normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
