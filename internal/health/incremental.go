package health

import (
	"sort"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// IncrementalDiff maintains the topological difference of a live
// baseline/experimental graph pair as traces fold in, instead of
// re-walking both graphs on every assessment. It drains the graphs'
// change-notification feeds (topology.Dirty) and reclassifies only the
// changes touching dirty endpoints, so a Diff() between folds costs
// O(changed endpoints) — the property that keeps Monitor verdicts
// sub-millisecond at production graph sizes. Compare remains the
// reference implementation; TestIncrementalDiffMatchesCompare proves
// the two agree on randomized trace streams.
//
// The classification of an edge depends only on which node and edge
// keys exist in each graph, and AddTrace only ever adds keys — the
// graphs grow monotonically. Every predicate Compare evaluates can
// therefore flip at most once (false→true), exactly when one of the
// graphs gains a specific key, and reverse indexes map each gained key
// to the bounded set of classifications it can affect.
//
// Not safe for concurrent use; the Monitor serializes access under its
// own lock. After construction every graph mutation must flow through
// AddTrace (direct map manipulation bypasses the feed).
type IncrementalDiff struct {
	base, exp           *topology.Graph
	baseDirty, expDirty *topology.Dirty

	// Base-side classification state.
	baseLogical   map[logicalEdge]int                 // base edge count per logical interaction
	baseByLogical map[logicalEdge][]topology.EdgeKey  // base edges per logical interaction
	baseEpVers    map[logicalEndpoint]map[string]bool // versions per base endpoint

	// Experimental-side state and reverse indexes: which exp edges a
	// base-side key gain can reclassify.
	expLogical map[logicalEdge]int
	expByLog   map[logicalEdge][]topology.EdgeKey
	expByNode  map[tracing.NodeKey][]topology.EdgeKey // edges incident to the exact node key
	expByToEp  map[logicalEndpoint][]topology.EdgeKey // edges calling into the endpoint

	// Per-service version sets for the UpdatedServices summary.
	baseSvcVers, expSvcVers map[string]map[string]bool

	// Materialized state, maintained sorted so Diff() never re-sorts:
	// expChanges holds additions/updates in experimental-edge order,
	// removals the vanished baseline edges in baseline-edge order —
	// concatenated they reproduce Compare's output order exactly.
	expChanges []Change
	removals   []Change
	added      []tracing.NodeKey
	removed    []tracing.NodeKey
	updated    map[string]bool

	// Scratch reused across updates and materializations.
	affEdges map[topology.EdgeKey]bool
	affRems  map[topology.EdgeKey]bool
	affSvcs  map[string]bool
	out      *Diff
	outCh    []Change
	outSvcs  []string
	clean    bool
}

// NewIncrementalDiff attaches change trackers to both graphs and builds
// the initial difference from their current contents. The graphs may
// already hold data; everything folded afterwards must go through
// AddTrace.
func NewIncrementalDiff(base, exp *topology.Graph) *IncrementalDiff {
	d := &IncrementalDiff{
		base: base, exp: exp,
		baseDirty: base.Track(), expDirty: exp.Track(),
		baseLogical:   make(map[logicalEdge]int),
		baseByLogical: make(map[logicalEdge][]topology.EdgeKey),
		baseEpVers:    make(map[logicalEndpoint]map[string]bool),
		expLogical:    make(map[logicalEdge]int),
		expByLog:      make(map[logicalEdge][]topology.EdgeKey),
		expByNode:     make(map[tracing.NodeKey][]topology.EdgeKey),
		expByToEp:     make(map[logicalEndpoint][]topology.EdgeKey),
		baseSvcVers:   make(map[string]map[string]bool),
		expSvcVers:    make(map[string]map[string]bool),
		updated:       make(map[string]bool),
		affEdges:      make(map[topology.EdgeKey]bool),
		affRems:       make(map[topology.EdgeKey]bool),
		affSvcs:       make(map[string]bool),
	}
	// Seed by treating every existing key as freshly gained; the update
	// machinery then classifies everything, which is exactly a full
	// Compare stored into the incremental state.
	bn := make([]tracing.NodeKey, 0, len(base.Nodes))
	for nk := range base.Nodes {
		bn = append(bn, nk)
	}
	be := make([]topology.EdgeKey, 0, len(base.Edges))
	for ek := range base.Edges {
		be = append(be, ek)
	}
	en := make([]tracing.NodeKey, 0, len(exp.Nodes))
	for nk := range exp.Nodes {
		en = append(en, nk)
	}
	ee := make([]topology.EdgeKey, 0, len(exp.Edges))
	for ek := range exp.Edges {
		ee = append(ee, ek)
	}
	// Drop whatever accumulated before we took ownership of the feed
	// (e.g. a tracker attached earlier): the seed scan covers it.
	d.baseDirty.Drain()
	d.expDirty.Drain()
	d.apply(bn, be, en, ee)
	return d
}

// Diff drains pending graph changes and returns the current difference.
// When nothing changed since the last call the cached result returns
// as-is. The returned Diff and its slices are owned by the
// IncrementalDiff and valid only until the next Diff call after further
// folds — callers consume it immediately (rank, render, serialize), as
// Monitor does.
func (d *IncrementalDiff) Diff() *Diff {
	if !d.baseDirty.Empty() || !d.expDirty.Empty() {
		bn, be := d.baseDirty.Drain()
		en, ee := d.expDirty.Drain()
		d.apply(bn, be, en, ee)
	}
	if d.clean && d.out != nil {
		return d.out
	}
	return d.materialize()
}

// apply folds a batch of gained keys into the classification state.
// Classifications are recomputed against the graphs' final (current)
// state, so ordering within the batch is irrelevant; the affected sets
// only need to be supersets of everything that could have flipped.
func (d *IncrementalDiff) apply(baseNodes []tracing.NodeKey, baseEdges []topology.EdgeKey,
	expNodes []tracing.NodeKey, expEdges []topology.EdgeKey) {

	clear(d.affEdges)
	clear(d.affRems)
	clear(d.affSvcs)

	for _, nk := range expNodes {
		addVersion(d.expSvcVers, nk.Service, nk.Version)
		d.affSvcs[nk.Service] = true
		if d.base.Nodes[nk] == nil {
			insertNode(&d.added, nk)
		}
		removeNode(&d.removed, nk) // base-only no longer: exp has it now
	}
	for _, nk := range baseNodes {
		addVersion(d.baseSvcVers, nk.Service, nk.Version)
		le := logicalEndpoint{nk.Service, nk.Endpoint}
		if d.baseEpVers[le] == nil {
			d.baseEpVers[le] = make(map[string]bool)
		}
		d.baseEpVers[le][nk.Version] = true
		d.affSvcs[nk.Service] = true
		if d.exp.Nodes[nk] == nil {
			insertNode(&d.removed, nk)
		}
		removeNode(&d.added, nk)
		// A base endpoint/version gain can flip callerNew/calleeNew (for
		// exp edges incident to the exact key) and new-endpoint vs
		// existing-endpoint (for exp edges calling into the endpoint).
		for _, ek := range d.expByNode[nk] {
			d.affEdges[ek] = true
		}
		for _, ek := range d.expByToEp[le] {
			d.affEdges[ek] = true
		}
	}
	for _, ek := range expEdges {
		le := logical(ek)
		d.expLogical[le]++
		d.expByLog[le] = append(d.expByLog[le], ek)
		d.expByNode[ek.From] = append(d.expByNode[ek.From], ek)
		if ek.To != ek.From {
			d.expByNode[ek.To] = append(d.expByNode[ek.To], ek)
		}
		toEp := logicalEndpoint{ek.To.Service, ek.To.Endpoint}
		d.expByToEp[toEp] = append(d.expByToEp[toEp], ek)
		d.affEdges[ek] = true
		// A gained exp logical interaction suppresses baseline removals.
		for _, bek := range d.baseByLogical[le] {
			d.affRems[bek] = true
		}
	}
	for _, ek := range baseEdges {
		le := logical(ek)
		d.baseLogical[le]++
		d.baseByLogical[le] = append(d.baseByLogical[le], ek)
		// A gained base edge can downgrade exp additions of the same
		// logical interaction (including the exact key, now unchanged).
		for _, eek := range d.expByLog[le] {
			d.affEdges[eek] = true
		}
		d.affRems[ek] = true
	}

	for ek := range d.affEdges {
		if c, changed := d.classify(ek); changed {
			upsertChange(&d.expChanges, c)
		} else {
			removeChange(&d.expChanges, ek)
		}
	}
	for ek := range d.affRems {
		if d.exp.Edges[ek] != nil || d.expLogical[logical(ek)] > 0 {
			removeChange(&d.removals, ek)
		} else {
			upsertChange(&d.removals, Change{Type: ChangeRemoveCall, Edge: ek, Subject: ek.To})
		}
	}
	for svc := range d.affSvcs {
		d.recomputeUpdated(svc)
	}
	d.clean = false
}

// classify mirrors Compare's per-edge classification of an experimental
// edge against the current base-side state. changed is false when the
// edge exists identically in the baseline.
func (d *IncrementalDiff) classify(ek topology.EdgeKey) (Change, bool) {
	if d.base.Edges[ek] != nil {
		return Change{}, false
	}
	le := logical(ek)
	if d.baseLogical[le] > 0 {
		callerNew := !d.baseEpVers[logicalEndpoint{ek.From.Service, ek.From.Endpoint}][ek.From.Version]
		calleeNew := !d.baseEpVers[logicalEndpoint{ek.To.Service, ek.To.Endpoint}][ek.To.Version]
		switch {
		case callerNew && calleeNew:
			return Change{Type: ChangeUpdatedVersion, Edge: ek, Subject: ek.To}, true
		case calleeNew:
			return Change{Type: ChangeUpdatedCalleeVersion, Edge: ek, Subject: ek.To}, true
		case callerNew:
			return Change{Type: ChangeUpdatedCallerVersion, Edge: ek, Subject: ek.From}, true
		default:
			return Change{Type: ChangeCallExistingEndpoint, Edge: ek, Subject: ek.To}, true
		}
	}
	if len(d.baseEpVers[logicalEndpoint{ek.To.Service, ek.To.Endpoint}]) > 0 {
		return Change{Type: ChangeCallExistingEndpoint, Edge: ek, Subject: ek.To}, true
	}
	return Change{Type: ChangeCallNewEndpoint, Edge: ek, Subject: ek.To}, true
}

func (d *IncrementalDiff) recomputeUpdated(svc string) {
	bvs := d.baseSvcVers[svc]
	upd := false
	if len(bvs) > 0 {
		for v := range d.expSvcVers[svc] {
			if !bvs[v] {
				upd = true
				break
			}
		}
	}
	if upd {
		d.updated[svc] = true
	} else {
		delete(d.updated, svc)
	}
}

// materialize assembles the Diff view from the sorted state into reused
// output buffers.
func (d *IncrementalDiff) materialize() *Diff {
	if d.out == nil {
		d.out = &Diff{Base: d.base, Exp: d.exp}
	}
	o := d.out
	d.outCh = append(d.outCh[:0], d.expChanges...)
	d.outCh = append(d.outCh, d.removals...)
	o.Changes = d.outCh
	if len(o.Changes) == 0 {
		o.Changes = nil
	}
	o.AddedNodes = d.added
	if len(o.AddedNodes) == 0 {
		o.AddedNodes = nil
	}
	o.RemovedNodes = d.removed
	if len(o.RemovedNodes) == 0 {
		o.RemovedNodes = nil
	}
	d.outSvcs = d.outSvcs[:0]
	for svc := range d.updated {
		d.outSvcs = append(d.outSvcs, svc)
	}
	sort.Strings(d.outSvcs)
	o.UpdatedServices = d.outSvcs
	if len(o.UpdatedServices) == 0 {
		o.UpdatedServices = nil
	}
	d.clean = true
	return o
}

// --- sorted-slice maintenance ---
//
// The materialized change lists stay permanently sorted (experimental
// edges in SortedEdges order, so the concatenation matches Compare's
// deterministic output byte for byte) and are patched in place with
// binary search + memmove — O(log n) to locate, O(n) worst-case to
// shift, with n bounded by the number of *changes*, not edges.

func nodeLess(a, b tracing.NodeKey) bool {
	if a.Service != b.Service {
		return a.Service < b.Service
	}
	if a.Version != b.Version {
		return a.Version < b.Version
	}
	return a.Endpoint < b.Endpoint
}

func edgeLess(a, b topology.EdgeKey) bool {
	if a.From != b.From {
		return nodeLess(a.From, b.From)
	}
	return nodeLess(a.To, b.To)
}

func insertNode(s *[]tracing.NodeKey, nk tracing.NodeKey) {
	i := sort.Search(len(*s), func(i int) bool { return !nodeLess((*s)[i], nk) })
	if i < len(*s) && (*s)[i] == nk {
		return
	}
	*s = append(*s, tracing.NodeKey{})
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = nk
}

func removeNode(s *[]tracing.NodeKey, nk tracing.NodeKey) {
	i := sort.Search(len(*s), func(i int) bool { return !nodeLess((*s)[i], nk) })
	if i < len(*s) && (*s)[i] == nk {
		copy((*s)[i:], (*s)[i+1:])
		*s = (*s)[:len(*s)-1]
	}
}

func upsertChange(s *[]Change, c Change) {
	i := sort.Search(len(*s), func(i int) bool { return !edgeLess((*s)[i].Edge, c.Edge) })
	if i < len(*s) && (*s)[i].Edge == c.Edge {
		(*s)[i] = c
		return
	}
	*s = append(*s, Change{})
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = c
}

func removeChange(s *[]Change, ek topology.EdgeKey) {
	i := sort.Search(len(*s), func(i int) bool { return !edgeLess((*s)[i].Edge, ek) })
	if i < len(*s) && (*s)[i].Edge == ek {
		copy((*s)[i:], (*s)[i+1:])
		*s = (*s)[:len(*s)-1]
	}
}

func addVersion(m map[string]map[string]bool, svc, ver string) {
	vs := m[svc]
	if vs == nil {
		vs = make(map[string]bool)
		m[svc] = vs
	}
	vs[ver] = true
}
