package health

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/topology"
	"contexp/internal/tracing"
)

func nk(svc, ver, ep string) tracing.NodeKey {
	return tracing.NodeKey{Service: svc, Version: ver, Endpoint: ep}
}

// graphFrom builds a graph from (from, to) node pairs with the given
// per-node mean latency in ms.
func graphFrom(variant tracing.Variant, edges [][2]tracing.NodeKey, latency map[tracing.NodeKey]float64) *topology.Graph {
	g := topology.NewGraph(variant)
	add := func(k tracing.NodeKey) {
		if g.Nodes[k] != nil {
			return
		}
		ms := latency[k]
		if ms == 0 {
			ms = 10
		}
		dur := time.Duration(ms * float64(time.Millisecond))
		g.Nodes[k] = &topology.Node{Key: k, Calls: 10, TotalDuration: 10 * dur}
	}
	for _, e := range edges {
		add(e[0])
		add(e[1])
		ek := topology.EdgeKey{From: e[0], To: e[1]}
		g.Edges[ek] = &topology.Edge{Key: ek, Calls: 10}
	}
	return g
}

var (
	feV1  = nk("frontend", "v1", "GET /")
	recV1 = nk("rec", "v1", "GET /recs")
	recV2 = nk("rec", "v2", "GET /recs")
	catV1 = nk("catalog", "v1", "GET /p")
	usrV1 = nk("users", "v1", "GET /history")
)

func baselineGraph(lat map[tracing.NodeKey]float64) *topology.Graph {
	return graphFrom(tracing.VariantBaseline, [][2]tracing.NodeKey{
		{feV1, recV1},
		{recV1, catV1},
	}, lat)
}

func TestCompareVersionUpdateAndNewEndpoint(t *testing.T) {
	base := baselineGraph(nil)
	// Experiment: rec v2 replaces v1, calling catalog (caller update)
	// and the brand-new users history endpoint.
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV2},
		{recV2, catV1},
		{recV2, usrV1},
	}, nil)

	d := Compare(base, exp)
	byType := d.CountByType()
	if byType[ChangeUpdatedCalleeVersion] != 1 {
		t.Errorf("updated-callee-version = %d, want 1 (%v)", byType[ChangeUpdatedCalleeVersion], d.Changes)
	}
	if byType[ChangeUpdatedCallerVersion] != 1 {
		t.Errorf("updated-caller-version = %d, want 1 (%v)", byType[ChangeUpdatedCallerVersion], d.Changes)
	}
	if byType[ChangeCallNewEndpoint] != 1 {
		t.Errorf("call-new-endpoint = %d, want 1 (%v)", byType[ChangeCallNewEndpoint], d.Changes)
	}
	if byType[ChangeRemoveCall] != 0 {
		t.Errorf("remove-call = %d, want 0 (version updates must not read as removals)", byType[ChangeRemoveCall])
	}
	// Node summary: rec@v2 + users added, rec@v1 removed, rec updated.
	if len(d.AddedNodes) != 2 {
		t.Errorf("AddedNodes = %v", d.AddedNodes)
	}
	if len(d.RemovedNodes) != 1 || d.RemovedNodes[0] != recV1 {
		t.Errorf("RemovedNodes = %v", d.RemovedNodes)
	}
	if len(d.UpdatedServices) != 1 || d.UpdatedServices[0] != "rec" {
		t.Errorf("UpdatedServices = %v", d.UpdatedServices)
	}
}

func TestCompareUpdatedVersionBothSides(t *testing.T) {
	base := baselineGraph(nil)
	// Both frontend and rec updated: fe@v2 -> rec@v2.
	feV2 := nk("frontend", "v2", "GET /")
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV2, recV2},
		{recV2, catV1},
	}, nil)
	d := Compare(base, exp)
	if d.CountByType()[ChangeUpdatedVersion] != 1 {
		t.Errorf("updated-version = %d, want 1 (%v)", d.CountByType()[ChangeUpdatedVersion], d.Changes)
	}
}

func TestCompareRemoveCall(t *testing.T) {
	base := baselineGraph(nil)
	// Experiment drops rec -> catalog entirely.
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV1},
	}, nil)
	d := Compare(base, exp)
	byType := d.CountByType()
	if byType[ChangeRemoveCall] != 1 {
		t.Errorf("remove-call = %d (%v)", byType[ChangeRemoveCall], d.Changes)
	}
	if len(d.Changes) != 1 {
		t.Errorf("changes = %v", d.Changes)
	}
}

func TestCompareCallExistingEndpoint(t *testing.T) {
	// Baseline has frontend->rec, rec->catalog. Experiment adds a direct
	// frontend->catalog call (catalog exists already).
	base := baselineGraph(nil)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV1},
		{recV1, catV1},
		{feV1, catV1},
	}, nil)
	d := Compare(base, exp)
	byType := d.CountByType()
	if byType[ChangeCallExistingEndpoint] != 1 {
		t.Errorf("call-existing-endpoint = %d (%v)", byType[ChangeCallExistingEndpoint], d.Changes)
	}
}

func TestCompareIdenticalGraphs(t *testing.T) {
	base := baselineGraph(nil)
	exp := baselineGraph(nil)
	d := Compare(base, exp)
	if len(d.Changes) != 0 || len(d.AddedNodes) != 0 || len(d.RemovedNodes) != 0 {
		t.Errorf("identical graphs produced diff: %+v", d.Changes)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := baselineGraph(nil)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV2},
		{recV2, catV1},
		{recV2, usrV1},
	}, nil)
	d1 := Compare(base, exp)
	d2 := Compare(base, exp)
	if len(d1.Changes) != len(d2.Changes) {
		t.Fatal("nondeterministic change count")
	}
	for i := range d1.Changes {
		if d1.Changes[i].ID() != d2.Changes[i].ID() {
			t.Fatal("nondeterministic change order")
		}
	}
}

func TestChangeTypeStringsAndUncertainty(t *testing.T) {
	types := []ChangeType{
		ChangeCallNewEndpoint, ChangeCallExistingEndpoint, ChangeRemoveCall,
		ChangeUpdatedCallerVersion, ChangeUpdatedCalleeVersion, ChangeUpdatedVersion,
	}
	for _, ct := range types {
		if ct.String() == "" {
			t.Errorf("empty name for %d", ct)
		}
		u := ct.Uncertainty()
		if u <= 0 || u > 1 {
			t.Errorf("%v uncertainty %v outside (0,1]", ct, u)
		}
	}
	// The ordering the paper postulates: new service > version update >
	// new edge > removed edge.
	if !(ChangeCallNewEndpoint.Uncertainty() > ChangeUpdatedVersion.Uncertainty() &&
		ChangeUpdatedVersion.Uncertainty() > ChangeCallExistingEndpoint.Uncertainty() &&
		ChangeCallExistingEndpoint.Uncertainty() > ChangeRemoveCall.Uncertainty()) {
		t.Error("uncertainty ordering violated")
	}
	if ChangeType(99).String() == "" || ChangeType(99).Uncertainty() <= 0 {
		t.Error("unknown change type should degrade gracefully")
	}
}

func TestDiffRender(t *testing.T) {
	base := baselineGraph(nil)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{feV1, recV2},
		{recV2, catV1},
		{recV2, usrV1},
	}, nil)
	d := Compare(base, exp)
	out := d.Render()
	for _, want := range []string{"topological difference", "+ ", "- ", "~ rec", "call-new-endpoint"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
