package health

import (
	"strings"
	"testing"

	"contexp/internal/tracing"
)

func TestAssess(t *testing.T) {
	d := degradedDiff()
	rep := Assess(d)
	if len(rep.Rankings) != 6 {
		t.Fatalf("rankings = %d", len(rep.Rankings))
	}
	if rep.Agreement <= 0 || rep.Agreement > 1 {
		t.Errorf("agreement = %v", rep.Agreement)
	}
	// In the degraded diff every heuristic agrees on the rec change.
	if rep.TopChange.Subject.Service != "rec" {
		t.Errorf("top change = %v", rep.TopChange)
	}
	out := rep.Render()
	for _, want := range []string{"health assessment", "consensus", "subtree-size", "hybrid-0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAssessEmptyDiff(t *testing.T) {
	base := baselineGraph(nil)
	d := Compare(base, baselineGraph(nil))
	rep := Assess(d)
	if len(d.Changes) != 0 {
		t.Fatal("precondition: diff should be empty")
	}
	if rep.TopChange != (Change{}) {
		t.Errorf("empty diff has top change %v", rep.TopChange)
	}
	if !strings.Contains(rep.Render(), "nothing to rank") {
		t.Error("empty render missing note")
	}
}

func TestAssessAgreementReflectsDisagreement(t *testing.T) {
	// Construct a diff where structural and temporal heuristics disagree:
	// a big healthy subtree change vs. a small degraded leaf.
	hubV2 := nk("hub", "v2", "e")
	leafV2 := nk("leaf", "v2", "e")
	lat := map[tracing.NodeKey]float64{
		nk("root", "v1", "e"): 100,
		nk("hub", "v1", "e"):  10,
		leafV2:                90, // heavily degraded leaf
		nk("leaf", "v1", "e"): 10,
		hubV2:                 10, // hub updated but healthy
		nk("a", "v1", "e"):    5,
		nk("b", "v1", "e"):    5,
		nk("c", "v1", "e"):    5,
	}
	base := graphFrom(tracing.VariantBaseline, [][2]tracing.NodeKey{
		{nk("root", "v1", "e"), nk("hub", "v1", "e")},
		{nk("hub", "v1", "e"), nk("a", "v1", "e")},
		{nk("hub", "v1", "e"), nk("b", "v1", "e")},
		{nk("hub", "v1", "e"), nk("c", "v1", "e")},
		{nk("root", "v1", "e"), nk("leaf", "v1", "e")},
	}, lat)
	exp := graphFrom(tracing.VariantExperiment, [][2]tracing.NodeKey{
		{nk("root", "v1", "e"), hubV2},
		{hubV2, nk("a", "v1", "e")},
		{hubV2, nk("b", "v1", "e")},
		{hubV2, nk("c", "v1", "e")},
		{nk("root", "v1", "e"), leafV2},
	}, lat)
	rep := Assess(Compare(base, exp))
	if rep.Agreement > 0.99 {
		t.Errorf("expected disagreement between structural and temporal heuristics, agreement = %v", rep.Agreement)
	}
}
