package health

import (
	"testing"
	"testing/quick"

	"contexp/internal/stats"
)

// Property: comparing a generated graph pair classifies every change
// into a known type, attributes it to a node present in the relevant
// graph, and never reports a change for identical graphs.
func TestCompareClassificationProperty(t *testing.T) {
	f := func(seedRaw uint16, sizeRaw, fracRaw uint8) bool {
		size := 100 + int(sizeRaw)%400
		frac := 0.02 + float64(fracRaw%20)/100
		base, exp, err := GenerateGraphPair(GraphGenConfig{
			Endpoints:      size,
			ChangeFraction: frac,
			Seed:           int64(seedRaw),
		})
		if err != nil {
			return false
		}
		d := Compare(base, exp)
		for _, c := range d.Changes {
			switch c.Type {
			case ChangeCallNewEndpoint, ChangeCallExistingEndpoint,
				ChangeUpdatedCallerVersion, ChangeUpdatedCalleeVersion, ChangeUpdatedVersion:
				if exp.Nodes[c.Subject] == nil {
					return false // subject must exist in experimental graph
				}
			case ChangeRemoveCall:
				if base.Nodes[c.Subject] == nil {
					return false // removed callee must exist in baseline
				}
			default:
				return false
			}
		}
		// Self-comparison is empty.
		if len(Compare(base, base).Changes) != 0 {
			return false
		}
		if len(Compare(exp, exp).Changes) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every heuristic produces a permutation of the diff's
// changes with finite scores, and nDCG of any ranking stays in [0,1].
func TestRankingPermutationProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		base, exp, err := GenerateGraphPair(GraphGenConfig{
			Endpoints: 200, ChangeFraction: 0.1, Seed: int64(seedRaw),
		})
		if err != nil {
			return false
		}
		d := Compare(base, exp)
		ideal := make([]float64, len(d.Changes))
		for i, c := range d.Changes {
			ideal[i] = c.Type.Uncertainty() * 3 // arbitrary relevance
		}
		for _, h := range AllHeuristics() {
			ranked := Rank(h, d)
			if len(ranked) != len(d.Changes) {
				return false
			}
			seen := make(map[string]bool, len(ranked))
			gains := make([]float64, len(ranked))
			for i, c := range ranked {
				if seen[c.ID()] {
					return false // duplicate in ranking
				}
				seen[c.ID()] = true
				gains[i] = c.Type.Uncertainty() * 3
			}
			ndcg := stats.NDCG(gains, ideal, 5)
			if ndcg < 0 || ndcg > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
