package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"contexp/internal/clock"
	"contexp/internal/topology"
	"contexp/internal/tracing"
)

// Monitor is the live analysis plane: it pulls settled traces out of a
// bounded tracing.LiveCollector and folds each one into the baseline
// and candidate interaction graphs of every registered run, keeping the
// Chapter-5 topological comparison continuously up to date while the
// experiment executes. The engine's topology checks and the control
// plane's health surfaces both read from it.
//
// Ingestion is pull-based: every Verdict/View call first harvests the
// collector, so the Monitor needs no goroutine of its own and the
// graphs are exactly as fresh as the newest settled trace. A trace is
// attributed by the version of the run's service it touched — candidate
// version anywhere in the trace puts the whole trace (the experimental
// user's interaction tree) into the candidate graph, baseline version
// into the baseline graph, and traces that never touched the service
// carry no signal for that run and are skipped.
type Monitor struct {
	src *tracing.LiveCollector
	// settle is how long a trace must be span-quiet before it is
	// harvested as complete.
	settle time.Duration

	// now stamps runAssessment.since at registration; overridable via
	// UseClock so virtual-time harnesses can register runs at simulated
	// instants instead of wall time.
	now func() time.Time

	mu     sync.Mutex
	runs   map[string]*runAssessment
	broken int64 // harvested traces failing validation
	folded int64 // valid traces folded into at least the harvest pass
}

// runAssessment is the per-run incremental graph pair.
type runAssessment struct {
	run, service, baseline, candidate string
	// since is the registration instant: traces that ended before it
	// belong to earlier traffic (a previous run, pre-launch load) and
	// must not seed this run's graphs.
	since                           time.Time
	frozen                          bool
	base, cand                      *topology.Graph
	baseTraces, candTraces, skipped int
	// inc maintains the topological diff incrementally as traces fold
	// in, so a verdict between harvests costs O(changed endpoints)
	// instead of an O(graph) Compare.
	inc *IncrementalDiff
	// Computed verdicts/views are cached per heuristic and invalidated
	// by generation: gen counts every trace this assessment has seen
	// (folded or skipped), so repeated health polls between harvests are
	// free.
	verdicts  map[string]*LiveVerdict
	view      *AssessmentView
	cachedGen int
}

// gen is the assessment's change generation: it advances whenever a
// harvested trace touched this assessment in any way, including skips
// (which still move the SkippedTraces counters surfaced in verdicts).
func (a *runAssessment) gen() int {
	return a.baseTraces + a.candTraces + a.skipped
}

// cacheAt invalidates stale cached verdicts and reports whether the
// caches are valid for the current generation.
func (a *runAssessment) cacheAt() {
	if g := a.gen(); g != a.cachedGen {
		a.verdicts = nil
		a.view = nil
		a.cachedGen = g
	}
}

// DefaultSettle is the span-quiet window after which a trace is taken
// as complete.
const DefaultSettle = 2 * time.Second

// NewMonitor creates a Monitor reading from collector. A settle of 0
// defaults to DefaultSettle; tests can pass a negative settle to
// harvest immediately.
func NewMonitor(collector *tracing.LiveCollector, settle time.Duration) *Monitor {
	if settle == 0 {
		settle = DefaultSettle
	}
	if settle < 0 {
		settle = 0
	}
	return &Monitor{src: collector, settle: settle, now: time.Now, runs: make(map[string]*runAssessment)}
}

// UseClock makes the monitor stamp run registrations from clk instead of
// wall time. Span timestamps are compared against that registration
// instant, so a monitor fed virtual-time spans (the in-process Sim under
// clock.Sim) must share the spans' notion of "now".
func (m *Monitor) UseClock(clk clock.Clock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = clk.Now
}

// Register starts (or restarts, on run-name reuse) topology assessment
// for a run: traces touching service at the baseline or candidate
// version are folded into fresh per-variant graphs from now on.
func (m *Monitor) Register(run, service, baseline, candidate string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Drain traces already settled before this run existed, so the
	// first verdict cannot be computed from a predecessor's traffic
	// still sitting in the collector.
	m.ingestLocked()
	a := &runAssessment{
		run: run, service: service, baseline: baseline, candidate: candidate,
		since: m.now(),
		base:  topology.NewGraph(tracing.VariantBaseline),
		cand:  topology.NewGraph(tracing.VariantExperiment),
	}
	a.inc = NewIncrementalDiff(a.base, a.cand)
	m.runs[run] = a
}

// Freeze stops folding new traces into a run's graphs while keeping the
// accumulated assessment readable — called when the run finishes, so
// post-run traffic does not dilute the record of what the experiment
// observed. Everything already settled is folded first, so only traces
// still inside the settle window at finish time are excluded.
func (m *Monitor) Freeze(run string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingestLocked()
	if a := m.runs[run]; a != nil {
		a.frozen = true
		// The cached view renders Frozen; drop it so the next poll
		// reflects the state change even though no trace folded.
		a.view = nil
	}
}

// Runs returns how many runs are registered (frozen ones included).
func (m *Monitor) Runs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.runs)
}

// FoldedTraces reports how many valid traces ingestion has processed.
func (m *Monitor) FoldedTraces() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.folded
}

// BrokenTraces reports harvested traces that failed validation (lost
// spans, unknown parents) and were discarded.
func (m *Monitor) BrokenTraces() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.broken
}

// ingestLocked harvests settled traces and folds them into every live
// assessment. Callers hold m.mu.
func (m *Monitor) ingestLocked() {
	for _, tr := range m.src.Harvest(m.settle) {
		if err := tr.Validate(); err != nil {
			m.broken++
			continue
		}
		m.folded++
		for _, a := range m.runs {
			if a.frozen {
				continue
			}
			a.fold(&tr)
		}
	}
}

// fold attributes one valid trace to the assessment's baseline or
// candidate graph.
func (a *runAssessment) fold(tr *tracing.Trace) {
	// Traces that ended before the run was registered are a
	// predecessor's traffic, not this experiment's evidence.
	var latest time.Time
	for _, s := range tr.Spans {
		if end := s.Start.Add(s.Duration); end.After(latest) {
			latest = end
		}
	}
	if latest.Before(a.since) {
		a.skipped++
		return
	}
	sawBaseline := false
	sawCandidate := false
	for _, s := range tr.Spans {
		if s.Service != a.service {
			continue
		}
		switch s.Version {
		case a.candidate:
			sawCandidate = true
		case a.baseline:
			sawBaseline = true
		}
	}
	switch {
	case sawCandidate:
		// A trace that touched the candidate anywhere is an experimental
		// user's interaction — even its baseline-versioned hops belong to
		// the experimental topology.
		if a.cand.AddTrace(tr) == nil {
			a.candTraces++
		}
	case sawBaseline:
		if a.base.AddTrace(tr) == nil {
			a.baseTraces++
		}
	default:
		a.skipped++
	}
}

// LiveVerdict is the topology assessment the engine's `check topology`
// evaluates: the classified changes between the run's baseline and
// candidate graphs, ranked by one heuristic.
type LiveVerdict struct {
	Run string `json:"run"`
	// Heuristic is the ranking heuristic's canonical name.
	Heuristic string `json:"heuristic"`
	// BaselineTraces / CandidateTraces count the traces folded into each
	// graph — the check's evidence base.
	BaselineTraces  int `json:"baselineTraces"`
	CandidateTraces int `json:"candidateTraces"`
	// SkippedTraces count traces that carried no signal for this run:
	// they never touched its service, or predate its registration.
	SkippedTraces int `json:"skippedTraces"`
	// Changes are all classified changes, ranked by descending impact.
	Changes []RankedChange `json:"changes,omitempty"`
}

// RankedChange is one classified topological change with its rank
// evidence, in wire-friendly form.
type RankedChange struct {
	// Class is the change class name (e.g. "call-new-endpoint").
	Class string `json:"class"`
	// Edge renders the changed interaction ("from -> to").
	Edge string `json:"edge"`
	// Subject is the node the change is attributed to.
	Subject string `json:"subject"`
	// Score is the heuristic's impact score.
	Score float64 `json:"score"`
}

// Verdict computes the current topology verdict for a run under the
// named heuristic ("" selects the default). It harvests the collector
// first, so the verdict reflects every settled trace.
func (m *Monitor) Verdict(run, heuristic string) (*LiveVerdict, error) {
	h, err := HeuristicByName(heuristic)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingestLocked()
	a := m.runs[run]
	if a == nil {
		return nil, fmt.Errorf("health: run %q is not registered for topology assessment", run)
	}
	a.cacheAt()
	if v := a.verdicts[h.Name()]; v != nil {
		return v, nil
	}
	v := &LiveVerdict{
		Run:             run,
		Heuristic:       h.Name(),
		BaselineTraces:  a.baseTraces,
		CandidateTraces: a.candTraces,
		SkippedTraces:   a.skipped,
	}
	diff := a.inc.Diff()
	for _, sc := range RankScored(h, diff) {
		v.Changes = append(v.Changes, RankedChange{
			Class:   sc.Type.String(),
			Edge:    sc.Edge.String(),
			Subject: sc.Subject.String(),
			Score:   sc.Score,
		})
	}
	if a.verdicts == nil {
		a.verdicts = make(map[string]*LiveVerdict)
	}
	a.verdicts[h.Name()] = v
	return v, nil
}

// GraphSummary is the wire view of one interaction graph's size.
type GraphSummary struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Roots int `json:"roots"`
}

// AssessmentView is the full health surface of one run: graphs, the
// classified diff, every heuristic's ranking, and the rendered report —
// what GET /v1/runs/{name}/health serves.
type AssessmentView struct {
	Run       string `json:"run"`
	Service   string `json:"service"`
	Baseline  string `json:"baseline"`
	Candidate string `json:"candidate"`
	// Frozen marks assessments of finished runs: the graphs no longer
	// grow.
	Frozen          bool         `json:"frozen,omitempty"`
	BaselineTraces  int          `json:"baselineTraces"`
	CandidateTraces int          `json:"candidateTraces"`
	SkippedTraces   int          `json:"skippedTraces"`
	BaselineGraph   GraphSummary `json:"baselineGraph"`
	CandidateGraph  GraphSummary `json:"candidateGraph"`
	// Changes is the default heuristic's full ranking.
	Changes []RankedChange `json:"changes,omitempty"`
	// ChangesByClass counts changes per class.
	ChangesByClass map[string]int `json:"changesByClass,omitempty"`
	// Rankings maps every heuristic to its top-ranked change IDs.
	Rankings map[string][]string `json:"rankings,omitempty"`
	// Agreement is the fraction of heuristics agreeing on the top
	// concern; TopChange is that change's ID.
	Agreement float64 `json:"agreement"`
	TopChange string  `json:"topChange,omitempty"`
	// Report is the rendered human-readable assessment.
	Report string `json:"report"`
}

// maxRankedPerHeuristic bounds the per-heuristic ranking lists in the
// view; the full ranking is in Changes.
const maxRankedPerHeuristic = 5

// View assembles the full assessment view of a run, harvesting first.
func (m *Monitor) View(run string) (*AssessmentView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingestLocked()
	a := m.runs[run]
	if a == nil {
		return nil, fmt.Errorf("health: run %q is not registered for topology assessment", run)
	}
	a.cacheAt()
	if a.view != nil {
		return a.view, nil
	}
	view := &AssessmentView{
		Run: run, Service: a.service, Baseline: a.baseline, Candidate: a.candidate,
		Frozen:          a.frozen,
		BaselineTraces:  a.baseTraces,
		CandidateTraces: a.candTraces,
		SkippedTraces:   a.skipped,
		BaselineGraph:   GraphSummary{Nodes: a.base.NumNodes(), Edges: a.base.NumEdges(), Roots: len(a.base.Roots)},
		CandidateGraph:  GraphSummary{Nodes: a.cand.NumNodes(), Edges: a.cand.NumEdges(), Roots: len(a.cand.Roots)},
	}
	diff := a.inc.Diff()
	def, _ := HeuristicByName("")
	for _, sc := range RankScored(def, diff) {
		view.Changes = append(view.Changes, RankedChange{
			Class:   sc.Type.String(),
			Edge:    sc.Edge.String(),
			Subject: sc.Subject.String(),
			Score:   sc.Score,
		})
	}
	if len(diff.Changes) > 0 {
		view.ChangesByClass = make(map[string]int)
		for t, n := range diff.CountByType() {
			view.ChangesByClass[t.String()] = n
		}
	}
	report := Assess(diff)
	view.Agreement = report.Agreement
	if len(diff.Changes) > 0 {
		view.TopChange = report.TopChange.ID()
		view.Rankings = make(map[string][]string, len(report.Rankings))
		for name, ranked := range report.Rankings {
			limit := len(ranked)
			if limit > maxRankedPerHeuristic {
				limit = maxRankedPerHeuristic
			}
			ids := make([]string, limit)
			for i := 0; i < limit; i++ {
				ids[i] = ranked[i].ID()
			}
			view.Rankings[name] = ids
		}
	}
	view.Report = report.Render()
	a.view = view
	return view, nil
}

// RegisteredRuns lists registered run names, sorted.
func (m *Monitor) RegisteredRuns() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.runs))
	for name := range m.runs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
