package tenancy

import (
	"context"
	"testing"
	"time"
)

func TestCanonicalAndDisplay(t *testing.T) {
	if Canonical("default") != "" || Canonical("") != "" || Canonical("checkout") != "checkout" {
		t.Fatalf("Canonical misbehaves")
	}
	if Display("") != "default" || Display("checkout") != "checkout" {
		t.Fatalf("Display misbehaves")
	}
}

func TestQualifySplit(t *testing.T) {
	cases := []struct {
		tenant, name, want string
	}{
		{"", "checkout", "checkout"},
		{"default", "checkout", "checkout"},
		{"teamA", "checkout", "teamA/checkout"},
	}
	for _, c := range cases {
		if got := Qualify(c.tenant, c.name); got != c.want {
			t.Errorf("Qualify(%q,%q) = %q, want %q", c.tenant, c.name, got, c.want)
		}
	}
	if tn, n := Split("teamA/checkout"); tn != "teamA" || n != "checkout" {
		t.Errorf("Split = %q %q", tn, n)
	}
	if tn, n := Split("checkout"); tn != "" || n != "checkout" {
		t.Errorf("Split bare = %q %q", tn, n)
	}
}

func TestParseTokens(t *testing.T) {
	r, err := ParseTokens("checkout=s3cret, search=hunter2 ,checkout=alt")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "checkout" || got[1] != "search" {
		t.Fatalf("Tenants = %v", got)
	}
	for token, want := range map[string]string{"s3cret": "checkout", "alt": "checkout", "hunter2": "search"} {
		if tn, ok := r.Resolve(token); !ok || tn != want {
			t.Errorf("Resolve(%q) = %q %v, want %q", token, tn, ok, want)
		}
	}
	if _, ok := r.Resolve("nope"); ok {
		t.Error("unknown token resolved")
	}

	for _, bad := range []string{"", "noequals", "=tok", "default=tok", "a/b=tok", "x=t,y=t"} {
		if _, err := ParseTokens(bad); err == nil {
			t.Errorf("ParseTokens(%q) accepted", bad)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := WithTenant(context.Background(), "default")
	if FromContext(ctx) != "" {
		t.Error("default tenant not canonicalized in context")
	}
	ctx = WithTenant(ctx, "teamB")
	if FromContext(ctx) != "teamB" {
		t.Error("tenant lost")
	}
	ctx = WithRequestID(ctx, "req-9")
	if RequestIDFromContext(ctx) != "req-9" {
		t.Error("request ID lost")
	}
}

func TestLimiterPerTenantIsolation(t *testing.T) {
	l := NewLimiter(1, 2) // 1 rps, burst 2
	now := time.Unix(1000, 0)

	// Tenant A burns its burst; tenant B is untouched.
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", now); !ok {
			t.Fatalf("a request %d throttled inside burst", i)
		}
	}
	ok, retry := l.Allow("a", now)
	if ok {
		t.Fatal("a admitted beyond burst")
	}
	if retry <= 0 || retry > time.Second+time.Millisecond {
		t.Fatalf("retryAfter = %v", retry)
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("b throttled by a's burst")
	}

	// Refill: one second buys one token back.
	if ok, _ := l.Allow("a", now.Add(time.Second)); !ok {
		t.Fatal("a still throttled after refill")
	}

	st := l.Stats()
	if st["a"].Requests != 4 || st["a"].Throttled != 1 {
		t.Fatalf("a usage = %+v", st["a"])
	}
	if st["b"].Throttled != 0 {
		t.Fatalf("b usage = %+v", st["b"])
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0)
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("x", now); !ok {
			t.Fatal("disabled limiter throttled")
		}
	}
	if l.Stats()["x"].Requests != 100 {
		t.Fatal("disabled limiter not counting")
	}
}
