package tenancy

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Limiter is a per-tenant token bucket: every tenant gets its own
// bucket of Burst tokens refilled at Rate tokens per second, so one
// tenant's ingestion storm throttles that tenant alone. The limiter
// also keeps per-tenant admission counters for the ops surfaces
// (/healthz, /v1/admin/tenants).
type Limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens    float64
	last      time.Time
	requests  uint64
	throttled uint64
}

// NewLimiter creates a Limiter. rate <= 0 disables limiting (Allow
// always admits but still counts requests); burst <= 0 defaults to
// max(1, rate).
func NewLimiter(rate float64, burst int) *Limiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, rate)
	}
	return &Limiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// Allow admits or throttles one request for tenant at time now. When
// throttled, retryAfter is how long until a token is available — the
// Retry-After header the middleware sends with the 429.
func (l *Limiter) Allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.buckets[tenant]
	if bk == nil {
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = bk
	}
	if elapsed := now.Sub(bk.last).Seconds(); elapsed > 0 {
		bk.tokens = math.Min(l.burst, bk.tokens+elapsed*l.rate)
		bk.last = now
	}
	bk.requests++
	if l.rate <= 0 {
		return true, 0
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	bk.throttled++
	need := 1 - bk.tokens
	return false, time.Duration(need / l.rate * float64(time.Second))
}

// Usage is one tenant's admission counters.
type Usage struct {
	Requests  uint64 `json:"requests"`
	Throttled uint64 `json:"throttled"`
}

// Stats returns per-tenant admission counters, keyed by canonical
// tenant, in sorted key order when ranged via the returned keys.
func (l *Limiter) Stats() map[string]Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Usage, len(l.buckets))
	for t, bk := range l.buckets {
		out[t] = Usage{Requests: bk.requests, Throttled: bk.throttled}
	}
	return out
}

// Tenants lists tenants that have made at least one request, sorted.
func (l *Limiter) Tenants() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.buckets))
	for t := range l.buckets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
