// Package tenancy turns the single-operator lab daemon into a
// multi-tenant control plane: it defines tenant identity, resolves API
// tokens to tenants, and enforces per-tenant request budgets.
//
// A tenant is a short string naming the team (or experiment program)
// that owns a set of strategies, runs, metric series, and routing
// entries. The canonical in-process representation of the default
// tenant — the only tenant of an auth-free daemon — is the empty
// string, so every pre-tenancy key (run names, router services, metric
// series) is byte-identical to its default-tenant qualified form and
// existing journals replay unchanged. Display surfaces render the
// empty tenant as "default".
//
// Identity is established at the HTTP edge (see internal/server's
// middleware chain): a bearer token resolves to a tenant through a
// Resolver, and everything downstream — engine conflict checks,
// scheduler capacity, metric series namespacing, journal records —
// carries the resolved tenant, never one claimed in a request body.
package tenancy

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Default is the display name of the empty (auth-free) tenant.
const Default = "default"

// Canonical maps the spellings of the default tenant ("" and
// "default") onto the canonical in-process form: the empty string.
func Canonical(tenant string) string {
	if tenant == Default {
		return ""
	}
	return tenant
}

// Display renders a canonical tenant for humans and JSON surfaces.
func Display(tenant string) string {
	if tenant == "" {
		return Default
	}
	return tenant
}

// Qualify namespaces a name by tenant. The default tenant's qualified
// form is the bare name, so single-tenant deployments keep their
// pre-tenancy keys (and journals, and routing tables) verbatim.
func Qualify(tenant, name string) string {
	if Canonical(tenant) == "" {
		return name
	}
	return tenant + "/" + name
}

// Split undoes Qualify: "tenantA/checkout" → ("tenantA", "checkout"),
// "checkout" → ("", "checkout").
func Split(qualified string) (tenant, name string) {
	if i := strings.IndexByte(qualified, '/'); i >= 0 {
		return qualified[:i], qualified[i+1:]
	}
	return "", qualified
}

// ValidName reports whether a tenant name is usable: nonempty, no
// separator or control bytes, and not the reserved default spelling.
func ValidName(tenant string) error {
	if tenant == "" || tenant == Default {
		return fmt.Errorf("tenancy: tenant name %q is reserved", tenant)
	}
	if strings.ContainsAny(tenant, "/\x00 \t\n") {
		return fmt.Errorf("tenancy: tenant name %q contains separator or whitespace bytes", tenant)
	}
	return nil
}

// --- context plumbing ---

type ctxKey int

const (
	tenantKey ctxKey = iota
	requestIDKey
)

// WithTenant returns a context carrying the (canonicalized) tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey, Canonical(tenant))
}

// FromContext returns the canonical tenant of a request context; the
// empty string (default tenant) when none was established.
func FromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey).(string)
	return t
}

// WithRequestID returns a context carrying the request ID the edge
// middleware minted (or accepted) for this request.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request ID, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// --- token resolution ---

// Resolver maps bearer tokens to tenants. The static implementation
// here is the lab stand-in for an identity provider: contexpd loads it
// from --auth-tokens. A nil *Resolver means auth is disabled and every
// caller is the default tenant.
type Resolver struct {
	byToken map[string]string // token → canonical tenant
	tenants []string          // sorted canonical tenant names
}

// ParseTokens builds a Resolver from the --auth-tokens spelling:
// comma-separated tenant=token pairs, e.g.
//
//	checkout=s3cret,search=hunter2
//
// One tenant may hold several tokens (repeat the tenant); one token
// may not serve two tenants.
func ParseTokens(spec string) (*Resolver, error) {
	r := &Resolver{byToken: make(map[string]string)}
	seen := make(map[string]bool)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		tenant, token, ok := strings.Cut(pair, "=")
		if !ok || token == "" {
			return nil, fmt.Errorf("tenancy: %q is not tenant=token", pair)
		}
		if err := ValidName(tenant); err != nil {
			return nil, err
		}
		if owner, dup := r.byToken[token]; dup {
			return nil, fmt.Errorf("tenancy: token reused by tenants %q and %q", owner, tenant)
		}
		r.byToken[token] = tenant
		if !seen[tenant] {
			seen[tenant] = true
			r.tenants = append(r.tenants, tenant)
		}
	}
	if len(r.byToken) == 0 {
		return nil, fmt.Errorf("tenancy: no tenant=token pairs in %q", spec)
	}
	sort.Strings(r.tenants)
	return r, nil
}

// Resolve maps a token to its tenant.
func (r *Resolver) Resolve(token string) (tenant string, ok bool) {
	tenant, ok = r.byToken[token]
	return tenant, ok
}

// Tenants lists the configured tenants, sorted.
func (r *Resolver) Tenants() []string {
	out := make([]string, len(r.tenants))
	copy(out, r.tenants)
	return out
}
