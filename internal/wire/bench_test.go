package wire

import (
	"fmt"
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/tracing"
)

// benchSamples mimics a loadgen flush: a few hundred samples over a
// small set of series.
func benchSamples(n int) []metrics.Sample {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	out := make([]metrics.Sample, n)
	for i := range out {
		out[i] = metrics.Sample{
			Metric: []string{"latency_ms", "error", "requests"}[i%3],
			Scope: metrics.Scope{
				Service: fmt.Sprintf("svc-%d", i%8),
				Version: []string{"v1", "v2"}[i%2],
				Variant: []string{"baseline", "canary"}[i%2],
			},
			Value: float64(i),
			At:    at.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func benchSpans(n int) []tracing.Span {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	out := make([]tracing.Span, n)
	for i := range out {
		out[i] = tracing.Span{
			TraceID: tracing.TraceID(i/4 + 1), SpanID: tracing.SpanID(i + 1),
			Service:  fmt.Sprintf("svc-%d", i%8),
			Version:  []string{"v1", "v2"}[i%2],
			Endpoint: []string{"GET /", "GET /products", "POST /cart"}[i%3],
			Start:    at.Add(time.Duration(i) * time.Millisecond),
			Duration: time.Duration(i%20) * time.Millisecond,
			Err:      i%13 == 0,
		}
		if i%4 != 0 {
			out[i].ParentID = out[i-1].SpanID
		}
	}
	return out
}

// BenchmarkWireDecodeMetrics is the gated zero-alloc decode path: after
// the intern table warms, decoding a 256-sample frame must not allocate.
func BenchmarkWireDecodeMetrics(b *testing.B) {
	var e MetricsEncoder
	var d MetricsDecoder
	frame := append([]byte(nil), e.Encode(benchSamples(256))...)
	if _, err := d.Decode(frame); err != nil { // warm the intern table
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Decode(frame)
		if err != nil || len(out) != 256 {
			b.Fatalf("decode: %v, %d samples", err, len(out))
		}
	}
}

// BenchmarkWireDecodeSpans is the span twin of the gated decode bench.
func BenchmarkWireDecodeSpans(b *testing.B) {
	var e SpansEncoder
	var d SpansDecoder
	frame := append([]byte(nil), e.Encode(benchSpans(256))...)
	if _, err := d.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Decode(frame)
		if err != nil || len(out) != 256 {
			b.Fatalf("decode: %v, %d spans", err, len(out))
		}
	}
}

// BenchmarkWireEncodeMetrics tracks the sender-side cost (the encoder
// reuses its buffers, so steady state stays allocation-flat too).
func BenchmarkWireEncodeMetrics(b *testing.B) {
	var e MetricsEncoder
	samples := benchSamples(256)
	e.Encode(samples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if frame := e.Encode(samples); len(frame) < HeaderSize {
			b.Fatal("short frame")
		}
	}
}
