package wire

import (
	"fmt"
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/tracing"
)

// benchSamples mimics a loadgen flush: a few hundred samples over a
// small set of series.
func benchSamples(n int) []metrics.Sample {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	out := make([]metrics.Sample, n)
	for i := range out {
		out[i] = metrics.Sample{
			Metric: []string{"latency_ms", "error", "requests"}[i%3],
			Scope: metrics.Scope{
				Service: fmt.Sprintf("svc-%d", i%8),
				Version: []string{"v1", "v2"}[i%2],
				Variant: []string{"baseline", "canary"}[i%2],
			},
			Value: float64(i),
			At:    at.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func benchSpans(n int) []tracing.Span {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	out := make([]tracing.Span, n)
	for i := range out {
		out[i] = tracing.Span{
			TraceID: tracing.TraceID(i/4 + 1), SpanID: tracing.SpanID(i + 1),
			Service:  fmt.Sprintf("svc-%d", i%8),
			Version:  []string{"v1", "v2"}[i%2],
			Endpoint: []string{"GET /", "GET /products", "POST /cart"}[i%3],
			Start:    at.Add(time.Duration(i) * time.Millisecond),
			Duration: time.Duration(i%20) * time.Millisecond,
			Err:      i%13 == 0,
		}
		if i%4 != 0 {
			out[i].ParentID = out[i-1].SpanID
		}
	}
	return out
}

// BenchmarkWireDecodeMetrics is the gated zero-alloc decode path: after
// the intern table warms, decoding a 256-sample frame must not allocate.
func BenchmarkWireDecodeMetrics(b *testing.B) {
	var e MetricsEncoder
	var d MetricsDecoder
	frame := append([]byte(nil), e.Encode(benchSamples(256))...)
	if _, err := d.Decode(frame); err != nil { // warm the intern table
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Decode(frame)
		if err != nil || len(out) != 256 {
			b.Fatalf("decode: %v, %d samples", err, len(out))
		}
	}
}

// BenchmarkWireDecodeSpans is the span twin of the gated decode bench.
func BenchmarkWireDecodeSpans(b *testing.B) {
	var e SpansEncoder
	var d SpansDecoder
	frame := append([]byte(nil), e.Encode(benchSpans(256))...)
	if _, err := d.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Decode(frame)
		if err != nil || len(out) != 256 {
			b.Fatalf("decode: %v, %d spans", err, len(out))
		}
	}
}

// BenchmarkWireEncodeMetrics tracks the sender-side cost (the encoder
// reuses its buffers, so steady state stays allocation-flat too).
func BenchmarkWireEncodeMetrics(b *testing.B) {
	var e MetricsEncoder
	samples := benchSamples(256)
	e.Encode(samples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if frame := e.Encode(samples); len(frame) < HeaderSize {
			b.Fatal("short frame")
		}
	}
}

// benchTableSnapshot is a fleet-scale routing snapshot: 64 services
// with rules, splits, and mirrors — the full-sync frame a reconnecting
// agent pays for.
func benchTableSnapshot() router.TableSnapshot {
	tbl := router.NewTable()
	for i := 0; i < 64; i++ {
		route := router.Route{
			Service: fmt.Sprintf("svc-%02d", i),
			Rules: []router.Rule{
				{Name: "beta", Match: router.GroupMatcher{Group: "beta"}, Version: "v2"},
			},
			Backends:   []router.Backend{{Version: "v1", Weight: 0.9}, {Version: "v2", Weight: 0.1}},
			Mirrors:    []string{"v3"},
			StickySalt: "exp",
		}
		if err := tbl.Set(route); err != nil {
			panic(err)
		}
	}
	return tbl.Export()
}

// BenchmarkSnapshotEncode tracks the control-plane cost of publishing a
// full routing snapshot to the watch stream.
func BenchmarkSnapshotEncode(b *testing.B) {
	var e SnapshotEncoder
	snap := benchTableSnapshot()
	if _, err := e.Encode(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := e.Encode(snap)
		if err != nil || len(frame) < HeaderSize {
			b.Fatalf("encode: %v", err)
		}
	}
}

// BenchmarkSnapshotDecode tracks the agent-side cost of a full sync.
// Routes allocate (they outlive the decoder inside the table), but all
// strings intern across frames.
func BenchmarkSnapshotDecode(b *testing.B) {
	var e SnapshotEncoder
	var d SnapshotDecoder
	frame, err := e.Encode(benchTableSnapshot())
	if err != nil {
		b.Fatal(err)
	}
	frame = append([]byte(nil), frame...)
	if _, err := d.Decode(frame); err != nil { // warm the intern table
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := d.Decode(frame)
		if err != nil || len(snap.Routes) != 64 {
			b.Fatalf("decode: %v, %d routes", err, len(snap.Routes))
		}
	}
}

// BenchmarkDeltaDecode tracks the steady-state watch path: one service
// shifting its split, the frame every phase transition fans out to the
// whole fleet.
func BenchmarkDeltaDecode(b *testing.B) {
	snap := benchTableSnapshot()
	delta := router.TableDelta{
		FromVersion: snap.Version,
		ToVersion:   snap.Version + 1,
		Upserts:     []router.Route{snap.Routes[0]},
	}
	var e DeltaEncoder
	var d DeltaDecoder
	frame, err := e.Encode(delta)
	if err != nil {
		b.Fatal(err)
	}
	frame = append([]byte(nil), frame...)
	if _, err := d.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := d.Decode(frame)
		if err != nil || len(got.Upserts) != 1 {
			b.Fatalf("decode: %v", err)
		}
	}
}
