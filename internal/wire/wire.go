// Package wire implements the compact binary batch format of the
// telemetry ingestion hot path: a length-prefixed, columnar encoding of
// metric samples and trace spans that the control plane content-
// negotiates on POST /v1/metrics and /v1/spans next to the JSON form.
//
// Where encoding/json allocates per field on every request, this codec
// decodes a whole batch with zero steady-state allocations: strings are
// deduplicated into a per-frame dictionary on the wire and interned
// across frames on the receiver, numeric columns are fixed-width
// little-endian arrays read in place, and both encoders and decoders
// keep their scratch buffers across calls (sync.Pool at the package
// surface). That is what lets ingestion ride at full load-generator
// throughput with a flat GC profile — the property CI enforces through
// `benchgate --gate-allocs`.
//
// # Frame layout (version 1)
//
//	offset  size  field
//	0       2     magic "CX"
//	2       1     format version (1)
//	3       1     batch kind: 1 = metric samples, 2 = spans
//	4       4     body length, uint32 little-endian
//	8       ...   body (exactly body-length bytes)
//
// The body is a string dictionary followed by column-major arrays, all
// integers little-endian:
//
//	dictionary:  u32 count, then per string: u32 byteLen + bytes
//	row count:   u32 n
//
//	metrics columns (kind 1):
//	  metric   [n]u32  dictionary index
//	  service  [n]u32  dictionary index
//	  version  [n]u32  dictionary index
//	  variant  [n]u32  dictionary index ("" allowed)
//	  value    [n]u64  IEEE-754 bits
//	  at       [n]i64  UnixNano; 0 = unset (receiver stamps arrival)
//
//	span columns (kind 2):
//	  traceId  [n]u64
//	  spanId   [n]u64
//	  parentId [n]u64  0 = root span
//	  service  [n]u32  dictionary index
//	  version  [n]u32  dictionary index
//	  endpoint [n]u32  dictionary index
//	  start    [n]i64  UnixNano; 0 = unset
//	  duration [n]i64  nanoseconds
//	  err      bitset, ceil(n/8) bytes, LSB-first
//
// A timestamp of exactly UnixNano 0 cannot be represented (it reads
// back as unset); real telemetry never stamps the 1970 epoch.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/tracing"
)

// ContentType is the negotiated media type of binary batch frames.
const ContentType = "application/x-contexp-batch"

// Version is the format version this package reads and writes.
const Version = 1

// Batch kinds.
const (
	KindMetrics = 1
	KindSpans   = 2
)

// HeaderSize is the fixed frame prefix length.
const HeaderSize = 8

// MaxStrings and MaxRows bound a single frame regardless of the
// transport's body limit, so a hostile header cannot demand huge
// allocations before the column bounds checks run.
const (
	MaxStrings = 1 << 20
	MaxRows    = 1 << 22
)

// DecodeError describes a malformed frame; the server maps it to 400.
type DecodeError struct{ msg string }

func (e *DecodeError) Error() string { return "wire: " + e.msg }

func errf(format string, args ...any) error {
	return &DecodeError{msg: fmt.Sprintf(format, args...)}
}

// header validates the fixed prefix and returns the kind and body.
func header(frame []byte, wantKind byte) ([]byte, error) {
	if len(frame) < HeaderSize {
		return nil, errf("frame shorter than %d-byte header", HeaderSize)
	}
	if frame[0] != 'C' || frame[1] != 'X' {
		return nil, errf("bad magic %q", frame[:2])
	}
	if frame[2] != Version {
		return nil, errf("unsupported version %d (want %d)", frame[2], Version)
	}
	if frame[3] != wantKind {
		return nil, errf("frame kind %d, want %d", frame[3], wantKind)
	}
	bodyLen := binary.LittleEndian.Uint32(frame[4:8])
	if int(bodyLen) != len(frame)-HeaderSize {
		return nil, errf("body length %d does not match %d frame bytes", bodyLen, len(frame)-HeaderSize)
	}
	return frame[HeaderSize:], nil
}

// Kind peeks a frame's batch kind without decoding (0 if malformed).
func Kind(frame []byte) byte {
	if len(frame) < HeaderSize || frame[0] != 'C' || frame[1] != 'X' {
		return 0
	}
	return frame[3]
}

// --- encoding ---

// enc is the shared encoder core: a grow-only frame buffer and a string
// dictionary reset per batch.
type enc struct {
	buf  []byte
	idx  map[string]uint32
	strs []string
}

func (e *enc) reset(kind byte) {
	e.buf = append(e.buf[:0], 'C', 'X', Version, kind, 0, 0, 0, 0)
	if e.idx == nil {
		e.idx = make(map[string]uint32)
	} else {
		clear(e.idx)
	}
	e.strs = e.strs[:0]
}

// intern returns the dictionary index of s, adding it on first use.
func (e *enc) intern(s string) uint32 {
	if i, ok := e.idx[s]; ok {
		return i
	}
	i := uint32(len(e.strs))
	e.idx[s] = i
	e.strs = append(e.strs, s)
	return i
}

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *enc) dict() {
	e.u32(uint32(len(e.strs)))
	for _, s := range e.strs {
		e.u32(uint32(len(s)))
		e.buf = append(e.buf, s...)
	}
}

// finish stamps the body length and returns the frame, valid until the
// encoder's next Encode.
func (e *enc) finish() []byte {
	binary.LittleEndian.PutUint32(e.buf[4:8], uint32(len(e.buf)-HeaderSize))
	return e.buf
}

func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// MetricsEncoder encodes metric sample batches. Not safe for concurrent
// use; the returned frame is valid until the next Encode.
type MetricsEncoder struct{ e enc }

// Encode renders samples as one binary frame.
func (m *MetricsEncoder) Encode(samples []metrics.Sample) []byte {
	e := &m.e
	e.reset(KindMetrics)
	// Columns are staged after interning so the dictionary serializes
	// first; indexes are computed in one pass per column to keep the
	// writes sequential.
	for _, s := range samples {
		e.intern(s.Metric)
		e.intern(s.Scope.Service)
		e.intern(s.Scope.Version)
		e.intern(s.Scope.Variant)
	}
	e.dict()
	e.u32(uint32(len(samples)))
	for _, s := range samples {
		e.u32(e.idx[s.Metric])
	}
	for _, s := range samples {
		e.u32(e.idx[s.Scope.Service])
	}
	for _, s := range samples {
		e.u32(e.idx[s.Scope.Version])
	}
	for _, s := range samples {
		e.u32(e.idx[s.Scope.Variant])
	}
	for _, s := range samples {
		e.u64(math.Float64bits(s.Value))
	}
	for _, s := range samples {
		e.u64(uint64(unixNano(s.At)))
	}
	return e.finish()
}

// SpansEncoder encodes span batches. Not safe for concurrent use; the
// returned frame is valid until the next Encode.
type SpansEncoder struct{ e enc }

// Encode renders spans as one binary frame. The span Variant tag is not
// carried (parity with the JSON ingestion form, which also omits it).
func (se *SpansEncoder) Encode(spans []tracing.Span) []byte {
	e := &se.e
	e.reset(KindSpans)
	for _, s := range spans {
		e.intern(s.Service)
		e.intern(s.Version)
		e.intern(s.Endpoint)
	}
	e.dict()
	e.u32(uint32(len(spans)))
	for _, s := range spans {
		e.u64(uint64(s.TraceID))
	}
	for _, s := range spans {
		e.u64(uint64(s.SpanID))
	}
	for _, s := range spans {
		e.u64(uint64(s.ParentID))
	}
	for _, s := range spans {
		e.u32(e.idx[s.Service])
	}
	for _, s := range spans {
		e.u32(e.idx[s.Version])
	}
	for _, s := range spans {
		e.u32(e.idx[s.Endpoint])
	}
	for _, s := range spans {
		e.u64(uint64(unixNano(s.Start)))
	}
	for _, s := range spans {
		e.u64(uint64(s.Duration))
	}
	var bits byte
	for i, s := range spans {
		if s.Err {
			bits |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.buf = append(e.buf, bits)
			bits = 0
		}
	}
	if len(spans)%8 != 0 {
		e.buf = append(e.buf, bits)
	}
	return e.finish()
}

// --- decoding ---

// dec is the shared decoder core. The intern table persists across
// frames: once every distinct string has been seen, decoding allocates
// nothing.
type dec struct {
	body   []byte
	off    int
	intern map[string]string
	strs   []string // per-frame dictionary, resolved to interned strings
}

func (d *dec) u32() (uint32, error) {
	if d.off+4 > len(d.body) {
		return 0, errf("truncated frame: need 4 bytes at offset %d of %d", d.off, len(d.body))
	}
	v := binary.LittleEndian.Uint32(d.body[d.off:])
	d.off += 4
	return v, nil
}

func (d *dec) u64() (uint64, error) {
	if d.off+8 > len(d.body) {
		return 0, errf("truncated frame: need 8 bytes at offset %d of %d", d.off, len(d.body))
	}
	v := binary.LittleEndian.Uint64(d.body[d.off:])
	d.off += 8
	return v, nil
}

// readDict parses the string dictionary, interning every entry.
func (d *dec) readDict() error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	if n > MaxStrings || int(n)*4 > len(d.body)-d.off {
		return errf("dictionary declares %d strings in %d remaining bytes", n, len(d.body)-d.off)
	}
	if d.intern == nil {
		d.intern = make(map[string]string)
	}
	d.strs = d.strs[:0]
	for i := uint32(0); i < n; i++ {
		l, err := d.u32()
		if err != nil {
			return err
		}
		if int(l) > len(d.body)-d.off {
			return errf("string %d declares %d bytes, %d remain", i, l, len(d.body)-d.off)
		}
		raw := d.body[d.off : d.off+int(l)]
		d.off += int(l)
		// The map lookup on a []byte conversion does not allocate; only
		// a first-seen string pays for its copy out of the frame buffer.
		s, ok := d.intern[string(raw)]
		if !ok {
			s = string(raw)
			d.intern[s] = s
		}
		d.strs = append(d.strs, s)
	}
	return nil
}

func (d *dec) rows(width int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > MaxRows || int(n)*width != len(d.body)-d.off {
		return 0, errf("%d rows of %d column bytes do not fit %d remaining bytes", n, width, len(d.body)-d.off)
	}
	return int(n), nil
}

func (d *dec) str(i uint32) (string, error) {
	if int(i) >= len(d.strs) {
		return "", errf("string index %d out of dictionary range %d", i, len(d.strs))
	}
	return d.strs[i], nil
}

// MetricsDecoder decodes metric sample frames. Not safe for concurrent
// use. The returned slice is decoder-owned and valid until the next
// Decode — callers hand it straight to Store.RecordBatch.
type MetricsDecoder struct {
	d       dec
	samples []metrics.Sample
}

// metricRowWidth is the fixed per-row column footprint: four u32
// indexes + value u64 + at i64.
const metricRowWidth = 4*4 + 8 + 8

// Decode parses one metrics frame.
func (md *MetricsDecoder) Decode(frame []byte) ([]metrics.Sample, error) {
	body, err := header(frame, KindMetrics)
	if err != nil {
		return nil, err
	}
	d := &md.d
	d.body, d.off = body, 0
	if err := d.readDict(); err != nil {
		return nil, err
	}
	n, err := d.rows(metricRowWidth)
	if err != nil {
		return nil, err
	}
	if cap(md.samples) < n {
		md.samples = make([]metrics.Sample, n)
	}
	out := md.samples[:n]
	// Columns decode in wire order; every index is bounds-checked
	// against the dictionary.
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Metric, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Scope.Service, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Scope.Version, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Scope.Variant, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		bits, _ := d.u64()
		out[i].Value = math.Float64frombits(bits)
	}
	for i := 0; i < n; i++ {
		ns, _ := d.u64()
		if ns == 0 {
			out[i].At = time.Time{}
		} else {
			out[i].At = time.Unix(0, int64(ns))
		}
	}
	return out, nil
}

// SpansDecoder decodes span frames. Not safe for concurrent use. The
// returned slice is decoder-owned and valid until the next Decode.
type SpansDecoder struct {
	d     dec
	spans []tracing.Span
}

// Decode parses one spans frame.
func (sd *SpansDecoder) Decode(frame []byte) ([]tracing.Span, error) {
	body, err := header(frame, KindSpans)
	if err != nil {
		return nil, err
	}
	d := &sd.d
	d.body, d.off = body, 0
	if err := d.readDict(); err != nil {
		return nil, err
	}
	// Row width is fractional because of the error bitset; validate the
	// fixed columns here and the bitset tail explicitly below.
	n32, err := d.u32()
	if err != nil {
		return nil, err
	}
	n := int(n32)
	const fixed = 3*8 + 3*4 + 2*8 // ids + string indexes + start/duration
	if n32 > MaxRows || n*fixed+(n+7)/8 != len(d.body)-d.off {
		return nil, errf("%d spans do not fit %d remaining bytes", n, len(d.body)-d.off)
	}
	if cap(sd.spans) < n {
		sd.spans = make([]tracing.Span, n)
	}
	out := sd.spans[:n]
	for i := 0; i < n; i++ {
		v, _ := d.u64()
		out[i].TraceID = tracing.TraceID(v)
	}
	for i := 0; i < n; i++ {
		v, _ := d.u64()
		out[i].SpanID = tracing.SpanID(v)
	}
	for i := 0; i < n; i++ {
		v, _ := d.u64()
		out[i].ParentID = tracing.SpanID(v)
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Service, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Version, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		idx, _ := d.u32()
		if out[i].Endpoint, err = d.str(idx); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		ns, _ := d.u64()
		if ns == 0 {
			out[i].Start = time.Time{}
		} else {
			out[i].Start = time.Unix(0, int64(ns))
		}
	}
	for i := 0; i < n; i++ {
		v, _ := d.u64()
		out[i].Duration = time.Duration(v)
	}
	for i := 0; i < n; i++ {
		out[i].Err = d.body[d.off+i/8]&(1<<(i%8)) != 0
		out[i].Variant = ""
	}
	return out, nil
}

// --- pools ---
//
// Ingestion handlers borrow codec state per request; returning it keeps
// the intern tables and scratch slices warm across requests, which is
// where the zero-alloc steady state comes from.

var (
	metricsEncPool = sync.Pool{New: func() any { return new(MetricsEncoder) }}
	spansEncPool   = sync.Pool{New: func() any { return new(SpansEncoder) }}
	metricsDecPool = sync.Pool{New: func() any { return new(MetricsDecoder) }}
	spansDecPool   = sync.Pool{New: func() any { return new(SpansDecoder) }}
)

// GetMetricsEncoder borrows a pooled encoder.
func GetMetricsEncoder() *MetricsEncoder { return metricsEncPool.Get().(*MetricsEncoder) }

// PutMetricsEncoder returns a pooled encoder.
func PutMetricsEncoder(e *MetricsEncoder) { metricsEncPool.Put(e) }

// GetSpansEncoder borrows a pooled encoder.
func GetSpansEncoder() *SpansEncoder { return spansEncPool.Get().(*SpansEncoder) }

// PutSpansEncoder returns a pooled encoder.
func PutSpansEncoder(e *SpansEncoder) { spansEncPool.Put(e) }

// GetMetricsDecoder borrows a pooled decoder.
func GetMetricsDecoder() *MetricsDecoder { return metricsDecPool.Get().(*MetricsDecoder) }

// PutMetricsDecoder returns a pooled decoder.
func PutMetricsDecoder(d *MetricsDecoder) { metricsDecPool.Put(d) }

// GetSpansDecoder borrows a pooled decoder.
func GetSpansDecoder() *SpansDecoder { return spansDecPool.Get().(*SpansDecoder) }

// PutSpansDecoder returns a pooled decoder.
func PutSpansDecoder(d *SpansDecoder) { spansDecPool.Put(d) }
