package wire

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"
	"sync"

	"contexp/internal/expmodel"
	"contexp/internal/router"
)

// This file extends the batch codec to the control plane's distribution
// path: full routing snapshots (kind 3), version-keyed deltas (kind 4),
// and heartbeats (kind 5) — the three frame kinds a contexpd streams to
// edge agents over GET /v1/routing/watch. The framing, dictionary, and
// hostile-input discipline are exactly the telemetry codec's: bounded
// pre-allocation before any count is trusted, interned strings across
// frames, pooled encoders/decoders.
//
// Snapshot body (kind 3), after the shared dictionary:
//
//	version   u64
//	routes    u32 count, then per route (see below)
//
// Delta body (kind 4), after the dictionary:
//
//	from      u64  version the delta chains onto
//	to        u64  version after applying
//	upserts   u32 count, then whole routes
//	removes   u32 count, then u32 dictionary index per service
//
// Route layout (variable width):
//
//	service   u32 dictionary index
//	salt      u32 dictionary index
//	rules     u32 count, then per rule:
//	            name u32, matcher kind u8, fields, version u32
//	            kind 1 = group:  group u32
//	            kind 2 = header: key u32, value u32
//	backends  u32 count, then per backend: version u32, weight u64 bits
//	mirrors   u32 count, then u32 index per mirror
//
// Heartbeat body (kind 5): a bare u64 snapshot version. Heartbeats keep
// the watch stream's lease alive through idle periods; an agent that
// stops receiving them (partition, dead control plane) fails static.

// Additional batch kinds (1 and 2 are the telemetry kinds in wire.go).
const (
	KindSnapshot  = 3
	KindDelta     = 4
	KindHeartbeat = 5
)

// StreamContentType is the media type of a routing watch stream: a
// sequence of self-delimiting frames (snapshot, deltas, heartbeats).
const StreamContentType = "application/x-contexp-stream"

// Matcher kinds on the wire. Only the two built-in matcher types
// serialize; a custom Matcher implementation is an encode error, never
// a silent drop.
const (
	matcherGroup  = 1
	matcherHeader = 2
)

// Per-frame structural bounds, same role as MaxStrings/MaxRows: a
// hostile count cannot demand a large allocation before the remaining
// byte budget vouches for it.
const (
	MaxRoutes        = 1 << 16
	MaxRouteElements = 1 << 12 // rules, backends, or mirrors per route
)

// Minimum wire footprint per counted element, used to sanity-check
// counts against remaining bytes before allocating.
const (
	minRouteBytes   = 5 * 4 // service, salt, three zero counts
	minRuleBytes    = 4 + 1 + 4 + 4
	minBackendBytes = 4 + 8
	minMirrorBytes  = 4
	minRemoveBytes  = 4
)

// --- encoding ---

func (e *enc) u8(v byte) { e.buf = append(e.buf, v) }

// internRoute stages every string of r into the dictionary.
func (e *enc) internRoute(r *router.Route) error {
	e.intern(r.Service)
	e.intern(r.StickySalt)
	for i := range r.Rules {
		e.intern(r.Rules[i].Name)
		e.intern(r.Rules[i].Version)
		switch m := r.Rules[i].Match.(type) {
		case router.GroupMatcher:
			e.intern(string(m.Group))
		case router.HeaderMatcher:
			e.intern(m.Key)
			e.intern(m.Value)
		default:
			return errf("rule %q of %q: matcher %T is not wire-encodable", r.Rules[i].Name, r.Service, r.Rules[i].Match)
		}
	}
	for i := range r.Backends {
		e.intern(r.Backends[i].Version)
	}
	for _, m := range r.Mirrors {
		e.intern(m)
	}
	return nil
}

// route writes one route's columns; internRoute must have run first.
func (e *enc) route(r *router.Route) {
	e.u32(e.idx[r.Service])
	e.u32(e.idx[r.StickySalt])
	e.u32(uint32(len(r.Rules)))
	for i := range r.Rules {
		e.u32(e.idx[r.Rules[i].Name])
		switch m := r.Rules[i].Match.(type) {
		case router.GroupMatcher:
			e.u8(matcherGroup)
			e.u32(e.idx[string(m.Group)])
		case router.HeaderMatcher:
			e.u8(matcherHeader)
			e.u32(e.idx[m.Key])
			e.u32(e.idx[m.Value])
		}
		e.u32(e.idx[r.Rules[i].Version])
	}
	e.u32(uint32(len(r.Backends)))
	for i := range r.Backends {
		e.u32(e.idx[r.Backends[i].Version])
		e.u64(math.Float64bits(r.Backends[i].Weight))
	}
	e.u32(uint32(len(r.Mirrors)))
	for _, m := range r.Mirrors {
		e.u32(e.idx[m])
	}
}

// SnapshotEncoder encodes full routing snapshots. Not safe for
// concurrent use; the returned frame is valid until the next Encode.
type SnapshotEncoder struct{ e enc }

// Encode renders snap as one binary frame. Routes containing a custom
// Matcher implementation fail the whole frame.
func (se *SnapshotEncoder) Encode(snap router.TableSnapshot) ([]byte, error) {
	e := &se.e
	e.reset(KindSnapshot)
	for i := range snap.Routes {
		if err := e.internRoute(&snap.Routes[i]); err != nil {
			return nil, err
		}
	}
	e.dict()
	e.u64(snap.Version)
	e.u32(uint32(len(snap.Routes)))
	for i := range snap.Routes {
		e.route(&snap.Routes[i])
	}
	return e.finish(), nil
}

// DeltaEncoder encodes version-keyed deltas. Not safe for concurrent
// use; the returned frame is valid until the next Encode.
type DeltaEncoder struct{ e enc }

// Encode renders d as one binary frame.
func (de *DeltaEncoder) Encode(d router.TableDelta) ([]byte, error) {
	e := &de.e
	e.reset(KindDelta)
	for i := range d.Upserts {
		if err := e.internRoute(&d.Upserts[i]); err != nil {
			return nil, err
		}
	}
	for _, svc := range d.Removes {
		e.intern(svc)
	}
	e.dict()
	e.u64(d.FromVersion)
	e.u64(d.ToVersion)
	e.u32(uint32(len(d.Upserts)))
	for i := range d.Upserts {
		e.route(&d.Upserts[i])
	}
	e.u32(uint32(len(d.Removes)))
	for _, svc := range d.Removes {
		e.u32(e.idx[svc])
	}
	return e.finish(), nil
}

// EncodeHeartbeat renders a heartbeat frame carrying the control
// plane's current snapshot version. The frame is freshly allocated (16
// bytes); heartbeats are rare enough that pooling would be noise.
func EncodeHeartbeat(version uint64) []byte {
	frame := make([]byte, HeaderSize+8)
	frame[0], frame[1], frame[2], frame[3] = 'C', 'X', Version, KindHeartbeat
	binary.LittleEndian.PutUint32(frame[4:8], 8)
	binary.LittleEndian.PutUint64(frame[HeaderSize:], version)
	return frame
}

// DecodeHeartbeat parses a heartbeat frame.
func DecodeHeartbeat(frame []byte) (uint64, error) {
	body, err := header(frame, KindHeartbeat)
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, errf("heartbeat body is %d bytes, want 8", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// --- decoding ---

func (d *dec) u8() (byte, error) {
	if d.off+1 > len(d.body) {
		return 0, errf("truncated frame: need 1 byte at offset %d of %d", d.off, len(d.body))
	}
	v := d.body[d.off]
	d.off++
	return v, nil
}

// count reads an element count and vets it against a hard cap and the
// bytes actually remaining (minWidth per element) before the caller
// allocates anything proportional to it.
func (d *dec) count(max uint32, minWidth int, what string) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > max || int(n)*minWidth > len(d.body)-d.off {
		return 0, errf("%s declares %d elements in %d remaining bytes", what, n, len(d.body)-d.off)
	}
	return int(n), nil
}

// strIdx reads one dictionary index and resolves it.
func (d *dec) strIdx() (string, error) {
	i, err := d.u32()
	if err != nil {
		return "", err
	}
	return d.str(i)
}

// route decodes one route. Routes are freshly allocated — they outlive
// the decoder inside the receiving table — but all strings are interned,
// so repeated snapshots of a stable fleet share storage.
func (d *dec) route() (router.Route, error) {
	var r router.Route
	var err error
	if r.Service, err = d.strIdx(); err != nil {
		return r, err
	}
	if r.StickySalt, err = d.strIdx(); err != nil {
		return r, err
	}
	nRules, err := d.count(MaxRouteElements, minRuleBytes, "rules")
	if err != nil {
		return r, err
	}
	if nRules > 0 {
		r.Rules = make([]router.Rule, nRules)
	}
	for i := 0; i < nRules; i++ {
		if r.Rules[i].Name, err = d.strIdx(); err != nil {
			return r, err
		}
		kind, err := d.u8()
		if err != nil {
			return r, err
		}
		switch kind {
		case matcherGroup:
			g, err := d.strIdx()
			if err != nil {
				return r, err
			}
			r.Rules[i].Match = router.GroupMatcher{Group: expmodel.UserGroup(g)}
		case matcherHeader:
			key, err := d.strIdx()
			if err != nil {
				return r, err
			}
			val, err := d.strIdx()
			if err != nil {
				return r, err
			}
			r.Rules[i].Match = router.HeaderMatcher{Key: key, Value: val}
		default:
			return r, errf("rule %d of %q: unknown matcher kind %d", i, r.Service, kind)
		}
		if r.Rules[i].Version, err = d.strIdx(); err != nil {
			return r, err
		}
	}
	nBackends, err := d.count(MaxRouteElements, minBackendBytes, "backends")
	if err != nil {
		return r, err
	}
	if nBackends > 0 {
		r.Backends = make([]router.Backend, nBackends)
	}
	for i := 0; i < nBackends; i++ {
		if r.Backends[i].Version, err = d.strIdx(); err != nil {
			return r, err
		}
		bits, err := d.u64()
		if err != nil {
			return r, err
		}
		w := math.Float64frombits(bits)
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return r, errf("backend %d of %q: weight %v is not a finite non-negative number", i, r.Service, w)
		}
		r.Backends[i].Weight = w
	}
	nMirrors, err := d.count(MaxRouteElements, minMirrorBytes, "mirrors")
	if err != nil {
		return r, err
	}
	if nMirrors > 0 {
		r.Mirrors = make([]string, nMirrors)
	}
	for i := 0; i < nMirrors; i++ {
		if r.Mirrors[i], err = d.strIdx(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// trailing rejects frames with unconsumed body bytes, so every accepted
// frame has exactly one byte-level representation.
func (d *dec) trailing() error {
	if d.off != len(d.body) {
		return errf("%d trailing bytes after frame content", len(d.body)-d.off)
	}
	return nil
}

// SnapshotDecoder decodes full-snapshot frames. Not safe for concurrent
// use. The returned snapshot is freshly allocated and the caller's to
// keep (strings are interned across frames).
type SnapshotDecoder struct{ d dec }

// Decode parses one snapshot frame.
func (sd *SnapshotDecoder) Decode(frame []byte) (router.TableSnapshot, error) {
	var snap router.TableSnapshot
	body, err := header(frame, KindSnapshot)
	if err != nil {
		return snap, err
	}
	d := &sd.d
	d.body, d.off = body, 0
	if err := d.readDict(); err != nil {
		return snap, err
	}
	if snap.Version, err = d.u64(); err != nil {
		return snap, err
	}
	n, err := d.count(MaxRoutes, minRouteBytes, "routes")
	if err != nil {
		return snap, err
	}
	if n > 0 {
		snap.Routes = make([]router.Route, 0, n)
	}
	for i := 0; i < n; i++ {
		r, err := d.route()
		if err != nil {
			return router.TableSnapshot{}, err
		}
		snap.Routes = append(snap.Routes, r)
	}
	if err := d.trailing(); err != nil {
		return router.TableSnapshot{}, err
	}
	return snap, nil
}

// DeltaDecoder decodes delta frames. Not safe for concurrent use. The
// returned delta is freshly allocated and the caller's to keep.
type DeltaDecoder struct{ d dec }

// Decode parses one delta frame.
func (dd *DeltaDecoder) Decode(frame []byte) (router.TableDelta, error) {
	var delta router.TableDelta
	body, err := header(frame, KindDelta)
	if err != nil {
		return delta, err
	}
	d := &dd.d
	d.body, d.off = body, 0
	if err := d.readDict(); err != nil {
		return delta, err
	}
	if delta.FromVersion, err = d.u64(); err != nil {
		return delta, err
	}
	if delta.ToVersion, err = d.u64(); err != nil {
		return delta, err
	}
	nUp, err := d.count(MaxRoutes, minRouteBytes, "upserts")
	if err != nil {
		return delta, err
	}
	if nUp > 0 {
		delta.Upserts = make([]router.Route, 0, nUp)
	}
	for i := 0; i < nUp; i++ {
		r, err := d.route()
		if err != nil {
			return router.TableDelta{}, err
		}
		delta.Upserts = append(delta.Upserts, r)
	}
	nRm, err := d.count(MaxRoutes, minRemoveBytes, "removes")
	if err != nil {
		return router.TableDelta{}, err
	}
	if nRm > 0 {
		delta.Removes = make([]string, nRm)
	}
	for i := 0; i < nRm; i++ {
		if delta.Removes[i], err = d.strIdx(); err != nil {
			return router.TableDelta{}, err
		}
	}
	if err := d.trailing(); err != nil {
		return router.TableDelta{}, err
	}
	return delta, nil
}

// --- stream reading ---

// ReadFrame reads one self-delimiting frame (any kind) from a buffered
// stream: the 8-byte header, then exactly the declared body. The frame
// is appended into buf (reused across calls when capacity allows) and
// the whole frame, header included, is returned. maxBody bounds a
// hostile length prefix. io.EOF is returned verbatim on a clean
// end-of-stream boundary.
func ReadFrame(r *bufio.Reader, buf []byte, maxBody int) ([]byte, error) {
	if cap(buf) < HeaderSize {
		buf = make([]byte, HeaderSize, 4096)
	}
	buf = buf[:HeaderSize]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errf("reading frame header: %v", err)
	}
	if buf[0] != 'C' || buf[1] != 'X' {
		return nil, errf("bad magic %q", buf[:2])
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[4:8]))
	if bodyLen > maxBody {
		return nil, errf("frame body %d bytes exceeds limit %d", bodyLen, maxBody)
	}
	total := HeaderSize + bodyLen
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[HeaderSize:]); err != nil {
		return nil, errf("reading %d-byte frame body: %v", bodyLen, err)
	}
	return buf, nil
}

// --- pools ---

var (
	snapshotEncPool = sync.Pool{New: func() any { return new(SnapshotEncoder) }}
	snapshotDecPool = sync.Pool{New: func() any { return new(SnapshotDecoder) }}
	deltaEncPool    = sync.Pool{New: func() any { return new(DeltaEncoder) }}
	deltaDecPool    = sync.Pool{New: func() any { return new(DeltaDecoder) }}
)

// GetSnapshotEncoder borrows a pooled encoder.
func GetSnapshotEncoder() *SnapshotEncoder { return snapshotEncPool.Get().(*SnapshotEncoder) }

// PutSnapshotEncoder returns a pooled encoder.
func PutSnapshotEncoder(e *SnapshotEncoder) { snapshotEncPool.Put(e) }

// GetSnapshotDecoder borrows a pooled decoder.
func GetSnapshotDecoder() *SnapshotDecoder { return snapshotDecPool.Get().(*SnapshotDecoder) }

// PutSnapshotDecoder returns a pooled decoder.
func PutSnapshotDecoder(d *SnapshotDecoder) { snapshotDecPool.Put(d) }

// GetDeltaEncoder borrows a pooled encoder.
func GetDeltaEncoder() *DeltaEncoder { return deltaEncPool.Get().(*DeltaEncoder) }

// PutDeltaEncoder returns a pooled encoder.
func PutDeltaEncoder(e *DeltaEncoder) { deltaEncPool.Put(e) }

// GetDeltaDecoder borrows a pooled decoder.
func GetDeltaDecoder() *DeltaDecoder { return deltaDecPool.Get().(*DeltaDecoder) }

// PutDeltaDecoder returns a pooled decoder.
func PutDeltaDecoder(d *DeltaDecoder) { deltaDecPool.Put(d) }
