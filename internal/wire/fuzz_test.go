package wire

import (
	"bytes"
	"testing"

	"contexp/internal/router"
)

// FuzzWireDecode throws arbitrary bytes at both decoders: they must
// reject malformed frames with an error, never panic or over-read.
// Corpus seeds are real frames from the round-trip fixtures, so
// mutation starts from structurally valid inputs.
func FuzzWireDecode(f *testing.F) {
	var me MetricsEncoder
	f.Add(append([]byte(nil), me.Encode(sampleBatch())...))
	f.Add(append([]byte(nil), me.Encode(nil)...))
	var se SpansEncoder
	f.Add(append([]byte(nil), se.Encode(spanBatch())...))
	f.Add(append([]byte(nil), se.Encode(nil)...))
	f.Add([]byte{'C', 'X', Version, KindMetrics, 0, 0, 0, 0})
	f.Add([]byte{'C', 'X', Version, KindSpans, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, frame []byte) {
		var md MetricsDecoder
		if samples, err := md.Decode(frame); err == nil {
			// Accepted frames must round-trip through the encoder.
			var e MetricsEncoder
			if len(e.Encode(samples)) < HeaderSize {
				t.Fatal("re-encode produced short frame")
			}
		}
		var sd SpansDecoder
		if spans, err := sd.Decode(frame); err == nil {
			var e SpansEncoder
			if len(e.Encode(spans)) < HeaderSize {
				t.Fatal("re-encode produced short frame")
			}
		}
	})
}

// FuzzSnapshotDecode throws arbitrary bytes at the routing snapshot,
// delta, and heartbeat decoders: malformed frames must error, never
// panic or over-allocate, and accepted frames must re-encode to the
// exact input bytes (the byte-identity invariant of the distribution
// protocol).
func FuzzSnapshotDecode(f *testing.F) {
	var se SnapshotEncoder
	if frame, err := se.Encode(demoSnapshot()); err == nil {
		f.Add(append([]byte(nil), frame...))
	}
	if frame, err := se.Encode(router.TableSnapshot{Version: 1}); err == nil {
		f.Add(append([]byte(nil), frame...))
	}
	var de DeltaEncoder
	delta := router.TableDelta{FromVersion: 1, ToVersion: 3,
		Upserts: demoSnapshot().Routes[:1], Removes: []string{"old"}}
	if frame, err := de.Encode(delta); err == nil {
		f.Add(append([]byte(nil), frame...))
	}
	f.Add(EncodeHeartbeat(12))
	f.Add([]byte{'C', 'X', Version, KindSnapshot, 0, 0, 0, 0})
	f.Add([]byte{'C', 'X', Version, KindDelta, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, frame []byte) {
		// Accepted frames must re-encode successfully, and the encoder's
		// output must be a fixpoint: a hand-crafted frame may order its
		// dictionary differently (or carry unused entries), but one
		// decode/encode round lands on the canonical byte form.
		var sd SnapshotDecoder
		if snap, err := sd.Decode(frame); err == nil {
			var e SnapshotEncoder
			canon, err := e.Encode(snap)
			if err != nil {
				t.Fatalf("re-encode of accepted snapshot failed: %v", err)
			}
			canon = append([]byte(nil), canon...)
			again, err := sd.Decode(canon)
			if err != nil {
				t.Fatalf("canonical snapshot frame rejected: %v", err)
			}
			var e2 SnapshotEncoder
			canon2, err := e2.Encode(again)
			if err != nil || !bytes.Equal(canon, canon2) {
				t.Fatalf("snapshot canonical form is not a fixpoint (%v)", err)
			}
		}
		var dd DeltaDecoder
		if delta, err := dd.Decode(frame); err == nil {
			var e DeltaEncoder
			canon, err := e.Encode(delta)
			if err != nil {
				t.Fatalf("re-encode of accepted delta failed: %v", err)
			}
			canon = append([]byte(nil), canon...)
			again, err := dd.Decode(canon)
			if err != nil {
				t.Fatalf("canonical delta frame rejected: %v", err)
			}
			var e2 DeltaEncoder
			canon2, err := e2.Encode(again)
			if err != nil || !bytes.Equal(canon, canon2) {
				t.Fatalf("delta canonical form is not a fixpoint (%v)", err)
			}
		}
		if v, err := DecodeHeartbeat(frame); err == nil {
			// Heartbeats have exactly one byte representation.
			if !bytes.Equal(EncodeHeartbeat(v), frame) {
				t.Fatal("accepted heartbeat did not re-encode byte-identically")
			}
		}
	})
}
