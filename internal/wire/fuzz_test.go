package wire

import (
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at both decoders: they must
// reject malformed frames with an error, never panic or over-read.
// Corpus seeds are real frames from the round-trip fixtures, so
// mutation starts from structurally valid inputs.
func FuzzWireDecode(f *testing.F) {
	var me MetricsEncoder
	f.Add(append([]byte(nil), me.Encode(sampleBatch())...))
	f.Add(append([]byte(nil), me.Encode(nil)...))
	var se SpansEncoder
	f.Add(append([]byte(nil), se.Encode(spanBatch())...))
	f.Add(append([]byte(nil), se.Encode(nil)...))
	f.Add([]byte{'C', 'X', Version, KindMetrics, 0, 0, 0, 0})
	f.Add([]byte{'C', 'X', Version, KindSpans, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, frame []byte) {
		var md MetricsDecoder
		if samples, err := md.Decode(frame); err == nil {
			// Accepted frames must round-trip through the encoder.
			var e MetricsEncoder
			if len(e.Encode(samples)) < HeaderSize {
				t.Fatal("re-encode produced short frame")
			}
		}
		var sd SpansDecoder
		if spans, err := sd.Decode(frame); err == nil {
			var e SpansEncoder
			if len(e.Encode(spans)) < HeaderSize {
				t.Fatal("re-encode produced short frame")
			}
		}
	})
}
