package wire

import (
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"

	"contexp/internal/metrics"
	"contexp/internal/tracing"
)

func sampleBatch() []metrics.Sample {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	return []metrics.Sample{
		{Metric: "latency_ms", Scope: metrics.Scope{Service: "catalog", Version: "v1", Variant: "baseline"}, Value: 12.5, At: at},
		{Metric: "latency_ms", Scope: metrics.Scope{Service: "catalog", Version: "v2", Variant: "canary"}, Value: 14.25, At: at.Add(time.Second)},
		{Metric: "error", Scope: metrics.Scope{Service: "catalog", Version: "v2", Variant: "canary"}, Value: 1},
		{Metric: "requests", Scope: metrics.Scope{Service: "frontend", Version: "v1"}, Value: 3, At: at.Add(2 * time.Second)},
	}
}

func spanBatch() []tracing.Span {
	at := time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)
	return []tracing.Span{
		{TraceID: 7, SpanID: 1, Service: "frontend", Version: "v1", Endpoint: "GET /",
			Start: at, Duration: 12 * time.Millisecond},
		{TraceID: 7, SpanID: 2, ParentID: 1, Service: "catalog", Version: "v2", Endpoint: "GET /products",
			Start: at.Add(time.Millisecond), Duration: 9 * time.Millisecond, Err: true},
		{TraceID: 8, SpanID: 3, Service: "frontend", Version: "v1", Endpoint: "GET /",
			Duration: 5 * time.Millisecond},
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	in := sampleBatch()
	var e MetricsEncoder
	var d MetricsDecoder
	frame := e.Encode(in)
	if Kind(frame) != KindMetrics {
		t.Fatalf("Kind = %d", Kind(frame))
	}
	out, err := d.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		// Compare on UTC: the codec carries UnixNano, not location.
		if !out[i].At.Equal(in[i].At) {
			t.Fatalf("sample %d At = %v, want %v", i, out[i].At, in[i].At)
		}
		got, want := out[i], in[i]
		got.At, want.At = time.Time{}, time.Time{}
		if got != want {
			t.Fatalf("sample %d = %+v, want %+v", i, got, want)
		}
	}
	// Re-encoding the decoded batch yields an identical frame.
	var e2 MetricsEncoder
	if !reflect.DeepEqual(e2.Encode(out), frame) {
		t.Fatal("re-encoded frame differs")
	}
}

func TestSpansRoundTrip(t *testing.T) {
	in := spanBatch()
	var e SpansEncoder
	var d SpansDecoder
	frame := e.Encode(in)
	if Kind(frame) != KindSpans {
		t.Fatalf("Kind = %d", Kind(frame))
	}
	out, err := d.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Start.Equal(in[i].Start) {
			t.Fatalf("span %d Start = %v, want %v", i, out[i].Start, in[i].Start)
		}
		got, want := out[i], in[i]
		got.Start, want.Start = time.Time{}, time.Time{}
		if got != want {
			t.Fatalf("span %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestEmptyBatchesRoundTrip(t *testing.T) {
	var me MetricsEncoder
	var md MetricsDecoder
	out, err := md.Decode(me.Encode(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty metrics: %v, %d samples", err, len(out))
	}
	var se SpansEncoder
	var sd SpansDecoder
	spans, err := sd.Decode(se.Encode(nil))
	if err != nil || len(spans) != 0 {
		t.Fatalf("empty spans: %v, %d spans", err, len(spans))
	}
}

func TestDecoderReuseAcrossFrames(t *testing.T) {
	var e MetricsEncoder
	var d MetricsDecoder
	for round := 0; round < 3; round++ {
		out, err := d.Decode(e.Encode(sampleBatch()))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 4 || out[0].Metric != "latency_ms" {
			t.Fatalf("round %d: %+v", round, out)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var e MetricsEncoder
	good := append([]byte(nil), e.Encode(sampleBatch())...)
	var se SpansEncoder
	goodSpans := append([]byte(nil), se.Encode(spanBatch())...)

	corrupt := func(mut func([]byte) []byte) []byte {
		return mut(append([]byte(nil), good...))
	}
	tests := []struct {
		name    string
		frame   []byte
		wantSub string
	}{
		{"empty", nil, "header"},
		{"short header", []byte{'C', 'X', 1}, "header"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'Z'; return b }), "magic"},
		{"wrong version", corrupt(func(b []byte) []byte { b[2] = 9; return b }), "version"},
		{"wrong kind", goodSpans, "kind"},
		{"truncated body", corrupt(func(b []byte) []byte { return b[:len(b)-3] }), "length"},
		{"trailing garbage", corrupt(func(b []byte) []byte { return append(b, 0xFF) }), "length"},
		{"oversized dict count", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[HeaderSize:], 0xFFFFFFFF)
			return b
		}), "dictionary"},
	}
	var d MetricsDecoder
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := d.Decode(tt.frame); err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("Decode = %v, want error containing %q", err, tt.wantSub)
			}
		})
	}

	// Row-count corruption: rewrite the count in place (it directly
	// follows the dictionary) and verify the width check trips.
	var d2 dec
	d2.body = good[HeaderSize:]
	if err := d2.readDict(); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(good[HeaderSize+d2.off:], 3) // actual batch has 4
	if _, err := d.Decode(good); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("row-count corruption: %v", err)
	}

	// String index out of range.
	frame2 := append([]byte(nil), e.Encode(sampleBatch())...)
	var d3 dec
	d3.body = frame2[HeaderSize:]
	if err := d3.readDict(); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(frame2[HeaderSize+d3.off+4:], 0xFFFF) // first metric index
	if _, err := d.Decode(frame2); err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("bad string index: %v", err)
	}
}

func TestClientBuffersAndFlushes(t *testing.T) {
	// Exercised end to end in internal/server's ingestion tests; here
	// just verify batching thresholds trigger flushes through a stub.
	posts := 0
	srv := newStubServer(t, func() { posts++ })
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client(), 2)
	c.RecordMetric(sampleBatch()[0])
	if posts != 0 {
		t.Fatal("flushed before batch filled")
	}
	c.RecordMetric(sampleBatch()[1])
	if posts != 1 {
		t.Fatalf("posts = %d after batch filled", posts)
	}
	c.RecordSpan(spanBatch()[0])
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if posts != 2 {
		t.Fatalf("posts = %d after explicit flush", posts)
	}
	if c.Errors() != 0 {
		t.Fatalf("errors = %d", c.Errors())
	}
}

// TestClientCloseFlushesTail is the regression test for short-lived
// emitters: telemetry still below the batch threshold must ship on
// Close, not silently drop with the process.
func TestClientCloseFlushesTail(t *testing.T) {
	posts := 0
	srv := newStubServer(t, func() { posts++ })
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client(), 100) // threshold never reached
	c.RecordMetric(sampleBatch()[0])
	c.RecordSpan(spanBatch()[0])
	if posts != 0 {
		t.Fatal("flushed before Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if posts != 2 { // one metrics frame + one spans frame
		t.Fatalf("posts = %d after Close, want 2", posts)
	}
	// Close with nothing buffered is a no-op, and a closed client still
	// accepts and ships later telemetry.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if posts != 2 {
		t.Fatalf("posts = %d after empty Close", posts)
	}
	c.RecordMetric(sampleBatch()[1])
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if posts != 3 {
		t.Fatalf("posts = %d after reuse, want 3", posts)
	}
}
