package wire

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"contexp/internal/metrics"
	"contexp/internal/tracing"
)

// DefaultBatch is the flush threshold of a Client's telemetry buffers.
const DefaultBatch = 256

// Client buffers metric samples and spans and ships them to a contexpd
// as binary batch frames — the emitter side of the codec, used by the
// load generator, the simulated services, and the demo when they report
// telemetry over HTTP instead of in-process. Safe for concurrent use.
type Client struct {
	metricsURL, spansURL string
	hc                   *http.Client
	batch                int
	token                string

	mu      sync.Mutex
	menc    MetricsEncoder
	senc    SpansEncoder
	samples []metrics.Sample
	spans   []tracing.Span

	flushes atomic.Uint64
	errors  atomic.Uint64
}

// NewClient creates a Client posting to baseURL's /v1/metrics and
// /v1/spans. hc nil uses http.DefaultClient; batch <= 0 uses
// DefaultBatch.
func NewClient(baseURL string, hc *http.Client, batch int) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Client{
		metricsURL: baseURL + "/v1/metrics",
		spansURL:   baseURL + "/v1/spans",
		hc:         hc,
		batch:      batch,
	}
}

// SetToken makes every post carry the bearer token — required against
// a control plane running with --auth-tokens, whose ingestion endpoints
// stamp each batch into the authenticated tenant's namespace. Call
// before the first Record; not synchronized with in-flight flushes.
func (c *Client) SetToken(token string) { c.token = token }

// RecordMetric buffers one sample, flushing when the batch fills.
func (c *Client) RecordMetric(s metrics.Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	flush := len(c.samples) >= c.batch
	c.mu.Unlock()
	if flush {
		_ = c.Flush()
	}
}

// RecordBatch buffers samples, flushing when the batch fills. It
// satisfies the same shape as metrics.Store.RecordBatch so simulators
// can target either sink.
func (c *Client) RecordBatch(samples []metrics.Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, samples...)
	flush := len(c.samples) >= c.batch
	c.mu.Unlock()
	if flush {
		_ = c.Flush()
	}
}

// RecordSpan buffers one span, flushing when the batch fills.
func (c *Client) RecordSpan(s tracing.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	flush := len(c.spans) >= c.batch
	c.mu.Unlock()
	if flush {
		_ = c.Flush()
	}
}

// Flush ships everything buffered. Failed posts count toward Errors;
// the buffered telemetry is dropped either way (ingestion is lossy by
// design, like the collector's span cap).
func (c *Client) Flush() error {
	c.mu.Lock()
	var mframe, sframe []byte
	if len(c.samples) > 0 {
		mframe = c.menc.Encode(c.samples)
		c.samples = c.samples[:0]
	}
	if len(c.spans) > 0 {
		sframe = c.senc.Encode(c.spans)
		c.spans = c.spans[:0]
	}
	// Post under the lock: the encoders' frame buffers are reused by the
	// next Encode, so they must not escape the critical section.
	var firstErr error
	if mframe != nil {
		if err := c.post(c.metricsURL, mframe); err != nil {
			firstErr = err
		}
	}
	if sframe != nil {
		if err := c.post(c.spansURL, sframe); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.mu.Unlock()
	return firstErr
}

func (c *Client) post(url string, frame []byte) error {
	c.flushes.Add(1)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(frame))
	if err != nil {
		c.errors.Add(1)
		return err
	}
	req.Header.Set("Content-Type", ContentType)
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.errors.Add(1)
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		c.errors.Add(1)
		return fmt.Errorf("wire: %s returned %s", url, resp.Status)
	}
	return nil
}

// Close flushes any buffered telemetry and returns the flush error, if
// any. Short-lived emitters (agents draining on shutdown, one-shot
// tools) must Close so tail-of-life telemetry reaches the control plane
// instead of dying in the buffer; the Client is still usable afterwards
// (Close is a flush barrier, not a teardown — there are no goroutines
// or connections to release).
func (c *Client) Close() error { return c.Flush() }

// Flushes reports how many frames the client has posted.
func (c *Client) Flushes() uint64 { return c.flushes.Load() }

// Errors reports how many posts failed (transport or non-202 status).
func (c *Client) Errors() uint64 { return c.errors.Load() }
