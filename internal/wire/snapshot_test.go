package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"contexp/internal/expmodel"
	"contexp/internal/router"
)

func demoSnapshot() router.TableSnapshot {
	tbl := router.NewTable()
	for i := 0; i < 4; i++ {
		svc := fmt.Sprintf("svc-%d", i)
		route := router.Route{
			Service: svc,
			Rules: []router.Rule{
				{Name: "beta", Match: router.GroupMatcher{Group: "beta"}, Version: "v2"},
				{Name: "qa", Match: router.HeaderMatcher{Key: "X-QA", Value: "1"}, Version: "v2"},
			},
			Backends:   []router.Backend{{Version: "v1", Weight: 0.9}, {Version: "v2", Weight: 0.1}},
			Mirrors:    []string{"v3"},
			StickySalt: "exp-1",
		}
		if err := tbl.Set(route); err != nil {
			panic(err)
		}
	}
	return tbl.Export()
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := demoSnapshot()
	var e SnapshotEncoder
	frame, err := e.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if Kind(frame) != KindSnapshot {
		t.Fatalf("kind = %d", Kind(frame))
	}
	var d SnapshotDecoder
	got, err := d.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != snap.Version || len(got.Routes) != len(snap.Routes) {
		t.Fatalf("decoded version %d / %d routes, want %d / %d",
			got.Version, len(got.Routes), snap.Version, len(snap.Routes))
	}
	// Install both sides into tables and compare the rendered form: the
	// codec must not change routing semantics in any visible way.
	a, b := router.NewTable(), router.NewTable()
	if err := a.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySnapshot(got); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("tables differ after round trip:\n%s\nvs:\n%s", a, b)
	}
	// Re-encoding the decoded snapshot must reproduce the frame bytes.
	var e2 SnapshotEncoder
	frame2, err := e2.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Error("re-encode is not byte-identical")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := router.TableDelta{
		FromVersion: 7,
		ToVersion:   9,
		Upserts:     demoSnapshot().Routes[:2],
		Removes:     []string{"gone-1", "gone-2"},
	}
	var e DeltaEncoder
	frame, err := e.Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	if Kind(frame) != KindDelta {
		t.Fatalf("kind = %d", Kind(frame))
	}
	var dec DeltaDecoder
	got, err := dec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromVersion != 7 || got.ToVersion != 9 ||
		len(got.Upserts) != 2 || len(got.Removes) != 2 || got.Removes[1] != "gone-2" {
		t.Fatalf("decoded delta = %+v", got)
	}
	var e2 DeltaEncoder
	frame2, err := e2.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Error("re-encode is not byte-identical")
	}
}

func TestEmptySnapshotAndDelta(t *testing.T) {
	var se SnapshotEncoder
	frame, err := se.Encode(router.TableSnapshot{Version: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sd SnapshotDecoder
	snap, err := sd.Decode(frame)
	if err != nil || snap.Version != 3 || len(snap.Routes) != 0 {
		t.Fatalf("empty snapshot = %+v, %v", snap, err)
	}
	var de DeltaEncoder
	frame, err = de.Encode(router.TableDelta{FromVersion: 3, ToVersion: 4})
	if err != nil {
		t.Fatal(err)
	}
	var dd DeltaDecoder
	delta, err := dd.Decode(frame)
	if err != nil || !delta.Empty() || delta.ToVersion != 4 {
		t.Fatalf("empty delta = %+v, %v", delta, err)
	}
}

// customMatcher is not one of the two wire-encodable matcher types.
type customMatcher struct{}

func (customMatcher) Match(*router.Request) bool { return false }
func (customMatcher) String() string             { return "custom" }

func TestEncodeRejectsCustomMatcher(t *testing.T) {
	snap := router.TableSnapshot{Version: 1, Routes: []router.Route{{
		Service:  "svc",
		Rules:    []router.Rule{{Name: "odd", Match: customMatcher{}, Version: "v1"}},
		Backends: []router.Backend{{Version: "v1", Weight: 1}},
	}}}
	var e SnapshotEncoder
	if _, err := e.Encode(snap); err == nil {
		t.Fatal("expected encode error for custom matcher")
	}
	var de DeltaEncoder
	if _, err := de.Encode(router.TableDelta{Upserts: snap.Routes}); err == nil {
		t.Fatal("expected encode error for custom matcher in delta")
	}
}

func TestSnapshotDecodeHostileInput(t *testing.T) {
	var e SnapshotEncoder
	valid, err := e.Encode(demoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short header":  valid[:4],
		"bad magic":     append([]byte("XY"), valid[2:]...),
		"wrong kind":    func() []byte { f := append([]byte(nil), valid...); f[3] = KindMetrics; return f }(),
		"truncated":     append([]byte(nil), valid[:len(valid)-6]...),
		"length lies":   func() []byte { f := append([]byte(nil), valid...); f[4]++; return f }(),
		"trailing junk": func() []byte { f := append([]byte(nil), valid...); f = append(f, 0, 0, 0, 0); f[4] += 4; return f }(),
		// Count fields live right after the dictionary; corrupting the
		// route count to a huge value must fail the byte-budget check,
		// not allocate.
		"huge count": func() []byte {
			f := append([]byte(nil), valid...)
			f[len(f)-1], f[len(f)-2] = 0xFF, 0xFF
			return f
		}(),
	}
	for name, frame := range cases {
		t.Run(name, func(t *testing.T) {
			var d SnapshotDecoder
			if _, err := d.Decode(frame); err == nil {
				t.Errorf("decode accepted %s", name)
			}
			var de *DecodeError
			if _, err := d.Decode(frame); !errors.As(err, &de) {
				t.Errorf("error is %T, want *DecodeError", err)
			}
		})
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	frame := EncodeHeartbeat(42)
	if Kind(frame) != KindHeartbeat {
		t.Fatalf("kind = %d", Kind(frame))
	}
	v, err := DecodeHeartbeat(frame)
	if err != nil || v != 42 {
		t.Fatalf("decode = %d, %v", v, err)
	}
	if _, err := DecodeHeartbeat(frame[:10]); err == nil {
		t.Error("truncated heartbeat accepted")
	}
}

func TestReadFrameStream(t *testing.T) {
	var se SnapshotEncoder
	sframe, err := se.Encode(demoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	hframe := EncodeHeartbeat(9)
	var stream bytes.Buffer
	stream.Write(sframe)
	stream.Write(hframe)
	r := bufio.NewReader(&stream)

	var buf []byte
	buf, err = ReadFrame(r, buf, 1<<20)
	if err != nil || Kind(buf) != KindSnapshot {
		t.Fatalf("first frame: kind %d, %v", Kind(buf), err)
	}
	if !bytes.Equal(buf, sframe) {
		t.Error("first frame bytes differ")
	}
	buf, err = ReadFrame(r, buf, 1<<20)
	if err != nil || Kind(buf) != KindHeartbeat {
		t.Fatalf("second frame: kind %d, %v", Kind(buf), err)
	}
	if _, err = ReadFrame(r, buf, 1<<20); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// A frame body exceeding the budget is rejected before any read.
	big := EncodeHeartbeat(1)
	big[4] = 0xFF
	big[5] = 0xFF
	r = bufio.NewReader(bytes.NewReader(big))
	if _, err := ReadFrame(r, nil, 1024); err == nil {
		t.Error("oversized frame accepted")
	}
}

// TestSnapshotDeltaReplayProperty is the satellite property test: a
// receiver that applies the full snapshot of version 0 and then replays
// every wire-encoded delta reconstructs a byte-identical routing table
// at every intermediate version — both in rendered form and in
// re-encoded snapshot frames.
func TestSnapshotDeltaReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := router.NewTable()
	services := []string{"a", "b", "c", "d", "e"}

	randomRoute := func(svc string) router.Route {
		r := router.Route{Service: svc, StickySalt: fmt.Sprintf("salt-%d", rng.Intn(3))}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			r.Backends = append(r.Backends, router.Backend{
				Version: fmt.Sprintf("v%d", i+1), Weight: rng.Float64() + 0.01,
			})
		}
		if rng.Intn(2) == 0 {
			r.Rules = append(r.Rules, router.Rule{
				Name:    "grp",
				Match:   router.GroupMatcher{Group: expmodel.UserGroup(fmt.Sprintf("g%d", rng.Intn(2)))},
				Version: "v1",
			})
		}
		if rng.Intn(3) == 0 {
			r.Rules = append(r.Rules, router.Rule{
				Name:    "hdr",
				Match:   router.HeaderMatcher{Key: "X-T", Value: fmt.Sprintf("%d", rng.Intn(2))},
				Version: "v1",
			})
		}
		if rng.Intn(3) == 0 {
			r.Mirrors = append(r.Mirrors, "dark")
		}
		return r
	}

	// Drive 200 random mutations, capturing an export after each.
	history := []router.TableSnapshot{src.Export()}
	for i := 0; i < 200; i++ {
		svc := services[rng.Intn(len(services))]
		switch rng.Intn(4) {
		case 0, 1:
			if err := src.Set(randomRoute(svc)); err != nil {
				t.Fatal(err)
			}
		case 2:
			// May target an absent service: version bumps, no change.
			src.Remove(svc)
		case 3:
			bk := []router.Backend{{Version: "v1", Weight: 0.5}, {Version: "v2", Weight: 0.5}}
			_ = src.SetWeights(svc, bk) // error when absent: no version bump
		}
		history = append(history, src.Export())
	}

	// Replay: full snapshot of history[0], then wire-encoded deltas.
	dst := router.NewTable()
	var se SnapshotEncoder
	var sd SnapshotDecoder
	frame, err := se.Encode(history[0])
	if err != nil {
		t.Fatal(err)
	}
	first, err := sd.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplySnapshot(first); err != nil {
		t.Fatal(err)
	}
	var de DeltaEncoder
	var dd DeltaDecoder
	for i := 1; i < len(history); i++ {
		if history[i].Version == history[i-1].Version {
			continue // rejected mutation: nothing to ship
		}
		dframe, err := de.Encode(router.DiffSnapshots(history[i-1], history[i]))
		if err != nil {
			t.Fatal(err)
		}
		delta, err := dd.Decode(dframe)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.ApplyDelta(delta); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if dst.Version() != history[i].Version {
			t.Fatalf("step %d: version %d, want %d", i, dst.Version(), history[i].Version)
		}
		// Byte identity at every version: rendered tables match, and the
		// re-exported snapshot encodes to the same frame as the source's.
		if got, want := dst.String(), tableString(t, history[i]); got != want {
			t.Fatalf("step %d: tables diverge:\n%s\nvs:\n%s", i, got, want)
		}
		wantFrame, err := se.Encode(history[i])
		if err != nil {
			t.Fatal(err)
		}
		wantFrame = append([]byte(nil), wantFrame...) // se's buffer is reused below
		var se2 SnapshotEncoder
		gotFrame, err := se2.Encode(dst.Export())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantFrame, gotFrame) {
			t.Fatalf("step %d: snapshot frames not byte-identical", i)
		}
	}
}

// tableString renders a snapshot the way a table holding it would.
func tableString(t *testing.T, snap router.TableSnapshot) string {
	t.Helper()
	tbl := router.NewTable()
	if err := tbl.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	return tbl.String()
}
