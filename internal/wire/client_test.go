package wire

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// newStubServer accepts binary frames on /v1/metrics and /v1/spans,
// validates them with the real decoders, and counts posts.
func newStubServer(t *testing.T, onPost func()) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading stub body: %v", err)
		}
		if ct := r.Header.Get("Content-Type"); ct != ContentType {
			t.Errorf("Content-Type = %q", ct)
		}
		switch r.URL.Path {
		case "/v1/metrics":
			var d MetricsDecoder
			if _, err := d.Decode(body); err != nil {
				t.Errorf("decoding metrics frame: %v", err)
			}
		case "/v1/spans":
			var d SpansDecoder
			if _, err := d.Decode(body); err != nil {
				t.Errorf("decoding spans frame: %v", err)
			}
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		onPost()
		w.WriteHeader(http.StatusAccepted)
	}))
}
