// Package fleet is the control-plane half of the distributed data
// plane: it turns the router.Table's copy-on-write snapshot swaps into
// a stream of versioned wire frames and fans them out to a fleet of
// edge agents, while keeping a registry of who is connected, what
// version each agent has applied, and how far behind the brain it is.
//
// The Hub subscribes to the table's change notification. On every swap
// it exports the table, diffs against the previous export, encodes one
// delta frame, and broadcasts it to every subscriber; a ring of recent
// deltas lets a reconnecting agent catch up from its last applied
// version without paying for a full snapshot. Agents that fall behind a
// subscriber buffer are disconnected (their stream ends) and reconnect
// into the catch-up path — the hub never blocks the mutation path or
// other agents on a slow consumer.
//
// Periodic heartbeat frames carry the current version through idle
// stretches. They double as the fleet's lease: an agent that stops
// seeing frames knows it is partitioned and fails static (keeps serving
// its last-applied snapshot) rather than guessing.
package fleet

import (
	"sort"
	"sync"
	"time"

	"contexp/internal/router"
	"contexp/internal/wire"
)

// Config parameterizes a Hub.
type Config struct {
	// Table is the routing table to distribute (required).
	Table *router.Table
	// HeartbeatInterval is how often idle watchers receive a heartbeat
	// frame (default 5s). It bounds how stale a partitioned agent's
	// lease can look: agents treat silence longer than a few intervals
	// as a lost control plane.
	HeartbeatInterval time.Duration
	// DeltaRing is how many recent delta frames are retained for
	// catch-up (default 128). A reconnecting agent whose last applied
	// version fell off the ring resyncs from a full snapshot.
	DeltaRing int
	// SendBuffer is the per-subscriber frame buffer (default 32). A
	// subscriber that stops draining loses its stream once the buffer
	// fills, never the hub.
	SendBuffer int
}

// cachedDelta is one retained delta frame keyed by its version span.
type cachedDelta struct {
	from, to uint64
	frame    []byte
}

// AgentState is the registry's view of one agent.
type AgentState struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// Connected reports a live watch stream.
	Connected   bool      `json:"connected"`
	ConnectedAt time.Time `json:"connectedAt,omitzero"`
	// SentVersion is the latest snapshot version written to the agent's
	// watch stream; AppliedVersion is the version the agent last
	// acknowledged as installed in its local table. The gap between
	// them is in-flight propagation.
	SentVersion    uint64 `json:"sentVersion"`
	AppliedVersion uint64 `json:"appliedVersion"`
	// Lag is the control plane's current version minus AppliedVersion.
	Lag uint64 `json:"lag"`
	// LastAck is when the agent last posted a heartbeat.
	LastAck time.Time `json:"lastAck,omitzero"`
	// Resolves is the agent's self-reported lifetime Resolve count.
	Resolves uint64 `json:"resolves"`
	// Stale is the agent's self-reported fail-static flag: it has not
	// seen a frame within its lease and is serving its last snapshot.
	Stale bool `json:"stale,omitempty"`
}

// Subscription is one watcher's end of the frame stream.
type Subscription struct {
	frames chan []byte
	hub    *Hub
	id     string

	mu      sync.Mutex
	lagged  bool
	closed  bool
	sentVer uint64
}

// Frames is the stream of encoded wire frames (snapshot, delta, or
// heartbeat). It closes when the hub shuts down or the subscriber fell
// behind; Lagged distinguishes the two.
func (s *Subscription) Frames() <-chan []byte { return s.frames }

// Lagged reports whether the hub dropped this subscriber for not
// draining its buffer. The agent should reconnect and catch up.
func (s *Subscription) Lagged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagged
}

// send queues a frame, closing the stream instead of blocking when the
// buffer is full. Returns false when the subscription is finished.
func (s *Subscription) send(frame []byte, version uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	select {
	case s.frames <- frame:
		if version > s.sentVer {
			s.sentVer = version
		}
		return true
	default:
		s.lagged = true
		s.closed = true
		close(s.frames)
		return false
	}
}

// close ends the stream (idempotent).
func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.frames)
	}
}

// sentVersion is the highest version written to this stream.
func (s *Subscription) sentVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentVer
}

// Stats is the hub's health surface.
type Stats struct {
	// CurrentVersion is the last published snapshot version.
	CurrentVersion uint64 `json:"currentVersion"`
	// Watchers is how many watch streams are live right now; Agents how
	// many distinct agents the registry has ever seen.
	Watchers int `json:"watchers"`
	Agents   int `json:"agents"`
	// Broadcasts counts delta fan-outs, Heartbeats heartbeat fan-outs,
	// Snapshots full-snapshot syncs served, CatchUps delta-chain
	// catch-ups served, Lagged subscribers dropped for not draining.
	Broadcasts uint64 `json:"broadcasts"`
	Heartbeats uint64 `json:"heartbeats"`
	Snapshots  uint64 `json:"snapshots"`
	CatchUps   uint64 `json:"catchUps"`
	Lagged     uint64 `json:"lagged"`
}

// Hub distributes routing snapshots and tracks the agent fleet. Create
// with New, release with Close.
type Hub struct {
	cfg   Config
	table *router.Table

	mu     sync.Mutex
	last   router.TableSnapshot // latest export, the diff base
	ring   []cachedDelta
	subs   map[*Subscription]struct{}
	agents map[string]*AgentState
	stats  Stats

	unsubscribe func()
	stop        chan struct{}
	done        chan struct{}
	closeOnce   sync.Once
}

// New creates a Hub distributing table and starts its publisher
// goroutine.
func New(cfg Config) *Hub {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.DeltaRing <= 0 {
		cfg.DeltaRing = 128
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = 32
	}
	h := &Hub{
		cfg:    cfg,
		table:  cfg.Table,
		last:   cfg.Table.Export(),
		subs:   make(map[*Subscription]struct{}),
		agents: make(map[string]*AgentState),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	changes, cancel := cfg.Table.Subscribe()
	h.unsubscribe = cancel
	go h.run(changes)
	return h
}

// Close stops the publisher and ends every live stream. Idempotent.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		h.unsubscribe()
		close(h.stop)
		<-h.done
		h.mu.Lock()
		for sub := range h.subs {
			sub.close()
		}
		clear(h.subs)
		h.mu.Unlock()
	})
}

// run is the publisher loop: table change notifications become delta
// broadcasts, the ticker becomes heartbeats.
func (h *Hub) run(changes <-chan struct{}) {
	defer close(h.done)
	ticker := time.NewTicker(h.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-changes:
			h.publish()
		case <-ticker.C:
			h.heartbeat()
		}
	}
}

// publish diffs the table against the last export and broadcasts one
// delta frame. Change notifications coalesce, so a single delta may
// span several versions.
func (h *Hub) publish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.table.Export()
	if cur.Version == h.last.Version {
		return
	}
	delta := router.DiffSnapshots(h.last, cur)
	enc := wire.GetDeltaEncoder()
	frame, err := enc.Encode(delta)
	if err != nil {
		// A route with a custom (non-encodable) matcher cannot be
		// distributed; keep the diff base so the next publish retries,
		// and let heartbeats carry the version gap — agents see
		// themselves lagging and resync when the table becomes
		// encodable again.
		wire.PutDeltaEncoder(enc)
		return
	}
	// The encoder's buffer is reused; the ring and subscribers need a
	// stable copy.
	frame = append([]byte(nil), frame...)
	wire.PutDeltaEncoder(enc)
	h.last = cur
	h.ring = append(h.ring, cachedDelta{from: delta.FromVersion, to: delta.ToVersion, frame: frame})
	if len(h.ring) > h.cfg.DeltaRing {
		h.ring = h.ring[len(h.ring)-h.cfg.DeltaRing:]
	}
	h.stats.Broadcasts++
	for sub := range h.subs {
		if !sub.send(frame, cur.Version) {
			h.dropLocked(sub)
		}
	}
}

// heartbeat fans the current version out to every subscriber.
func (h *Hub) heartbeat() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	frame := wire.EncodeHeartbeat(h.last.Version)
	h.stats.Heartbeats++
	for sub := range h.subs {
		if !sub.send(frame, 0) {
			h.dropLocked(sub)
		}
	}
}

// dropLocked unregisters a finished subscriber (hub lock held).
func (h *Hub) dropLocked(sub *Subscription) {
	if _, ok := h.subs[sub]; !ok {
		return
	}
	delete(h.subs, sub)
	if sub.Lagged() {
		h.stats.Lagged++
	}
	if st, ok := h.agents[sub.id]; ok && st.Connected {
		st.Connected = false
		st.SentVersion = sub.sentVersion()
	}
}

// Watch opens a stream for agent id connecting from addr. lastApplied
// is the version the agent's table currently sits at (0 for a fresh
// agent): when the ring still holds a contiguous delta chain from that
// version the initial frames are exactly those deltas, otherwise the
// stream starts with one full snapshot. The caller must Unwatch when
// the stream ends.
func (h *Hub) Watch(id, addr string, lastApplied uint64) (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub := &Subscription{
		frames: make(chan []byte, h.cfg.SendBuffer),
		hub:    h,
		id:     id,
	}
	// Assemble initial frames under the lock: nothing can publish
	// between the catch-up computation and registration, so the stream
	// has no gap and no duplicate.
	switch chain, ok := h.chainLocked(lastApplied); {
	case lastApplied == h.last.Version:
		// Already current: confirm with a heartbeat so the agent's
		// lease starts immediately.
		sub.send(wire.EncodeHeartbeat(h.last.Version), 0)
	case ok:
		for _, frame := range chain {
			sub.send(frame, 0)
		}
		sub.mu.Lock()
		sub.sentVer = h.last.Version
		sub.mu.Unlock()
		h.stats.CatchUps++
	default:
		enc := wire.GetSnapshotEncoder()
		frame, err := enc.Encode(h.last)
		if err != nil {
			wire.PutSnapshotEncoder(enc)
			return nil, err
		}
		frame = append([]byte(nil), frame...)
		wire.PutSnapshotEncoder(enc)
		sub.send(frame, h.last.Version)
		h.stats.Snapshots++
	}
	h.subs[sub] = struct{}{}
	st := h.agents[id]
	if st == nil {
		st = &AgentState{ID: id}
		h.agents[id] = st
	}
	st.Addr = addr
	st.Connected = true
	st.ConnectedAt = time.Now()
	st.SentVersion = h.last.Version
	return sub, nil
}

// chainLocked returns the retained delta frames forming a contiguous
// chain from version `from` to the current version, or ok=false when
// the ring cannot bridge the gap. The initial frames must fit the send
// buffer — a chain longer than that would close the stream it is meant
// to seed.
func (h *Hub) chainLocked(from uint64) ([][]byte, bool) {
	if from == 0 || from > h.last.Version {
		return nil, false
	}
	var chain [][]byte
	at := from
	for _, cd := range h.ring {
		if cd.to <= at {
			continue
		}
		if cd.from != at {
			return nil, false // gap: the needed delta fell off the ring
		}
		chain = append(chain, cd.frame)
		at = cd.to
	}
	if at != h.last.Version || len(chain) >= h.cfg.SendBuffer {
		return nil, false
	}
	return chain, true
}

// Unwatch ends a stream and releases its registry slot.
func (h *Hub) Unwatch(sub *Subscription) {
	h.mu.Lock()
	h.dropLocked(sub)
	h.mu.Unlock()
	sub.close()
}

// Ack records an agent's heartbeat: the snapshot version its table has
// applied plus its self-reported counters. Agents that never opened a
// watch stream (or whose stream dropped) still register here.
func (h *Hub) Ack(id, addr string, applied, resolves uint64, stale bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.agents[id]
	if st == nil {
		st = &AgentState{ID: id}
		h.agents[id] = st
	}
	if addr != "" {
		st.Addr = addr
	}
	st.AppliedVersion = applied
	st.Resolves = resolves
	st.Stale = stale
	st.LastAck = time.Now()
}

// Agents returns the registry sorted by agent ID, lag computed against
// the current published version.
func (h *Hub) Agents() []AgentState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]AgentState, 0, len(h.agents))
	for _, st := range h.agents {
		view := *st
		if h.last.Version > view.AppliedVersion {
			view.Lag = h.last.Version - view.AppliedVersion
		}
		out = append(out, view)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Version is the latest published snapshot version.
func (h *Hub) Version() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last.Version
}

// Stats returns the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.CurrentVersion = h.last.Version
	st.Watchers = len(h.subs)
	st.Agents = len(h.agents)
	return st
}
