package fleet

import (
	"fmt"
	"testing"
	"time"

	"contexp/internal/router"
	"contexp/internal/wire"
)

func testRoute(service string) router.Route {
	return router.Route{
		Service:  service,
		Backends: []router.Backend{{Version: "v1", Weight: 0.8}, {Version: "v2", Weight: 0.2}},
	}
}

func newTestHub(t *testing.T, tbl *router.Table) *Hub {
	t.Helper()
	h := New(Config{Table: tbl, HeartbeatInterval: time.Hour})
	t.Cleanup(h.Close)
	return h
}

// recvFrame pulls one frame off a subscription with a deadline.
func recvFrame(t *testing.T, sub *Subscription) []byte {
	t.Helper()
	select {
	case frame, ok := <-sub.Frames():
		if !ok {
			t.Fatal("stream closed while waiting for a frame")
		}
		return frame
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a frame")
		return nil
	}
}

func applyFrame(t *testing.T, tbl *router.Table, frame []byte) {
	t.Helper()
	switch wire.Kind(frame) {
	case wire.KindSnapshot:
		var d wire.SnapshotDecoder
		snap, err := d.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.ApplySnapshot(snap); err != nil {
			t.Fatal(err)
		}
	case wire.KindDelta:
		var d wire.DeltaDecoder
		delta, err := d.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
	case wire.KindHeartbeat:
		// no table effect
	default:
		t.Fatalf("unexpected frame kind %d", wire.Kind(frame))
	}
}

// waitVersion drains frames into tbl until it reaches version v.
func waitVersion(t *testing.T, sub *Subscription, tbl *router.Table, v uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for tbl.Version() < v {
		select {
		case frame, ok := <-sub.Frames():
			if !ok {
				t.Fatalf("stream closed at version %d, want %d", tbl.Version(), v)
			}
			applyFrame(t, tbl, frame)
		case <-deadline:
			t.Fatalf("timed out at version %d, want %d", tbl.Version(), v)
		}
	}
}

func TestWatchFreshAgentGetsSnapshotThenDeltas(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := newTestHub(t, src)

	sub, err := h.Watch("a1", "127.0.0.1:9", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(sub)

	frame := recvFrame(t, sub)
	if wire.Kind(frame) != wire.KindSnapshot {
		t.Fatalf("first frame kind = %d, want snapshot", wire.Kind(frame))
	}
	replica := router.NewTable()
	applyFrame(t, replica, frame)
	if replica.Version() != src.Version() || replica.String() != src.String() {
		t.Fatalf("replica out of sync after snapshot:\n%s\nwant\n%s", replica.String(), src.String())
	}

	// Mutations arrive as deltas and converge the replica.
	if err := src.Set(testRoute("frontend")); err != nil {
		t.Fatal(err)
	}
	if err := src.SetWeights("catalog", []router.Backend{{Version: "v1", Weight: 0.5}, {Version: "v2", Weight: 0.5}}); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, sub, replica, src.Version())
	if replica.String() != src.String() {
		t.Fatalf("replica diverged:\n%s\nwant\n%s", replica.String(), src.String())
	}

	st := h.Stats()
	if st.Snapshots != 1 || st.Watchers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWatchCurrentAgentGetsHeartbeat(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := newTestHub(t, src)

	sub, err := h.Watch("a1", "", src.Version())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(sub)
	frame := recvFrame(t, sub)
	if wire.Kind(frame) != wire.KindHeartbeat {
		t.Fatalf("frame kind = %d, want heartbeat", wire.Kind(frame))
	}
	if v, err := wire.DecodeHeartbeat(frame); err != nil || v != src.Version() {
		t.Fatalf("heartbeat version = %d (%v), want %d", v, err, src.Version())
	}
}

func TestWatchCatchUpFromRing(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := newTestHub(t, src)

	// First agent follows live so we can both drive publishes and know
	// when they have happened.
	live, err := h.Watch("live", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(live)
	replica := router.NewTable()
	applyFrame(t, replica, recvFrame(t, live))
	joinAt := src.Version()

	for i := 0; i < 3; i++ {
		if err := src.Set(testRoute(fmt.Sprintf("svc-%d", i))); err != nil {
			t.Fatal(err)
		}
		waitVersion(t, live, replica, src.Version())
	}

	// A reconnecting agent that applied joinAt catches up from deltas
	// alone — no full snapshot.
	late, err := h.Watch("late", "", joinAt)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(late)
	// Seed the late table with the state it had at joinAt (catalog only).
	lateTbl := router.NewTable()
	seed := router.TableSnapshot{Version: joinAt, Routes: []router.Route{testRoute("catalog")}}
	if err := lateTbl.ApplySnapshot(seed); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, late, lateTbl, src.Version())
	if lateTbl.String() != src.String() {
		t.Fatalf("catch-up diverged:\n%s\nwant\n%s", lateTbl.String(), src.String())
	}
	if st := h.Stats(); st.CatchUps != 1 {
		t.Fatalf("CatchUps = %d, want 1 (stats %+v)", st.CatchUps, st)
	}
}

func TestWatchStaleVersionFallsBackToSnapshot(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := New(Config{Table: src, HeartbeatInterval: time.Hour, DeltaRing: 2})
	defer h.Close()

	live, err := h.Watch("live", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(live)
	replica := router.NewTable()
	applyFrame(t, replica, recvFrame(t, live))

	// Push enough versions that version-1 deltas fall off the 2-entry ring.
	for i := 0; i < 5; i++ {
		if err := src.Set(testRoute(fmt.Sprintf("svc-%d", i))); err != nil {
			t.Fatal(err)
		}
		waitVersion(t, live, replica, src.Version())
	}

	late, err := h.Watch("late", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(late)
	frame := recvFrame(t, late)
	if wire.Kind(frame) != wire.KindSnapshot {
		t.Fatalf("frame kind = %d, want full snapshot after ring eviction", wire.Kind(frame))
	}
}

func TestLaggedSubscriberIsDropped(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := New(Config{Table: src, HeartbeatInterval: time.Hour, SendBuffer: 2})
	defer h.Close()

	sub, err := h.Watch("slow", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Never drain: buffer holds the snapshot + 1 delta, the next delta
	// overflows and the hub must cut the stream rather than block.
	deadline := time.After(5 * time.Second)
	for i := 0; !sub.Lagged(); i++ {
		select {
		case <-deadline:
			t.Fatal("slow subscriber never dropped")
		default:
		}
		if err := src.Set(testRoute(fmt.Sprintf("svc-%d", i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// The stream must be closed (drained frames then closed channel).
	for range sub.Frames() {
	}
	if st := h.Stats(); st.Lagged != 1 || st.Watchers != 0 {
		t.Fatalf("stats after lag drop = %+v", st)
	}
	// Registry keeps the agent, marked disconnected.
	agents := h.Agents()
	if len(agents) != 1 || agents[0].Connected {
		t.Fatalf("agents = %+v", agents)
	}
}

func TestAckAndAgentsLag(t *testing.T) {
	src := router.NewTable()
	for i := 0; i < 3; i++ {
		if err := src.Set(testRoute(fmt.Sprintf("svc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h := newTestHub(t, src)
	// Hub exported at construction; version is 3.
	h.Ack("a1", "10.0.0.1:8080", 3, 1000, false)
	h.Ack("a2", "10.0.0.2:8080", 1, 50, true)

	agents := h.Agents()
	if len(agents) != 2 {
		t.Fatalf("agents = %+v", agents)
	}
	if agents[0].ID != "a1" || agents[0].Lag != 0 || agents[0].Resolves != 1000 || agents[0].Stale {
		t.Fatalf("a1 = %+v", agents[0])
	}
	if agents[1].ID != "a2" || agents[1].Lag != 2 || !agents[1].Stale {
		t.Fatalf("a2 = %+v", agents[1])
	}
	if agents[0].LastAck.IsZero() {
		t.Fatal("LastAck not recorded")
	}
}

func TestHeartbeatCarriesVersion(t *testing.T) {
	src := router.NewTable()
	if err := src.Set(testRoute("catalog")); err != nil {
		t.Fatal(err)
	}
	h := New(Config{Table: src, HeartbeatInterval: 10 * time.Millisecond})
	defer h.Close()

	sub, err := h.Watch("a1", "", src.Version())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unwatch(sub)
	recvFrame(t, sub) // initial confirmation heartbeat
	deadline := time.After(5 * time.Second)
	for {
		select {
		case frame := <-sub.Frames():
			if wire.Kind(frame) == wire.KindHeartbeat {
				if v, err := wire.DecodeHeartbeat(frame); err != nil || v != src.Version() {
					t.Fatalf("heartbeat = %d (%v), want %d", v, err, src.Version())
				}
				return
			}
		case <-deadline:
			t.Fatal("no periodic heartbeat")
		}
	}
}

func TestCloseEndsStreams(t *testing.T) {
	src := router.NewTable()
	h := New(Config{Table: src, HeartbeatInterval: time.Hour})
	sub, err := h.Watch("a1", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Frames():
			if !ok {
				if sub.Lagged() {
					t.Fatal("clean shutdown marked subscriber as lagged")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream not closed by hub shutdown")
		}
	}
}
