package bifrost

import (
	"fmt"
	"time"

	"contexp/internal/journal"
)

// RecoveredRun is one run rebuilt by Recover.
type RecoveredRun struct {
	// Name is the run (strategy) name.
	Name string
	// Status is the run's state after recovery: a terminal status, or
	// StatusRunning for a resumed run.
	Status RunStatus
	// Action says what recovery did: "finished" (terminal state
	// replayed), "resumed at phase X", "rolled back: ...", or a skip
	// reason.
	Action string
}

// RecoveryReport summarizes a Recover pass.
type RecoveryReport struct {
	// Finished counts runs replayed into a terminal state they had
	// already reached before the restart.
	Finished int
	// Resumed counts in-flight runs that re-entered a phase.
	Resumed int
	// Settled counts in-flight runs recovery drove to a terminal state
	// (rollback, promote, or abort per the strategy's transitions).
	Settled int
	// Skipped counts runs that could not be rebuilt (undecodable
	// strategy, name collision).
	Skipped int
	// DecodeErrors counts journal records that did not decode as run
	// events.
	DecodeErrors int
	// Runs details every run in launch order.
	Runs []RecoveredRun
}

// String renders the report one line per category.
func (rep *RecoveryReport) String() string {
	return fmt.Sprintf("recovered %d runs (%d finished, %d resumed, %d settled, %d skipped, %d decode errors)",
		len(rep.Runs), rep.Finished, rep.Resumed, rep.Settled, rep.Skipped, rep.DecodeErrors)
}

// Recover replays a write-ahead journal into the engine at startup,
// rebuilding every run the previous process journaled:
//
//   - Runs whose run-finished record is present come back in their
//     terminal state with their full event history, and their terminal
//     routing (candidate for succeeded, baseline for rolled-back) is
//     re-installed on the table, which an in-memory table lost with the
//     process.
//   - In-flight runs — launched but never finished — are settled
//     deterministically. The crash cut the interrupted phase's
//     observation short, so the phase concludes as inconclusive and the
//     strategy's own conditional chaining decides what happens next:
//     retry re-enters the interrupted phase (counting the crash against
//     MaxRetries; exhausted retries fall through to the failure
//     transition), next/goto resume at the following phase, and
//     rollback/promote/abort settle the run immediately, recording why.
//
// Settlement decisions are themselves journaled (through cfg.Journal,
// normally the same journal), so recovering twice from the same log is
// idempotent: the second pass finds the terminal records the first one
// wrote. Recover must run before the engine launches new runs.
func (e *Engine) Recover(j journal.Journal) (*RecoveryReport, error) {
	type runLog struct {
		name       string
		tenant     string
		dsl        string
		launched   bool
		events     []Event
		status     RunStatus // terminal status; 0 while in-flight
		superseded bool      // an equally-named later run replaced it
	}
	rep := &RecoveryReport{}
	var order []*runLog
	byName := make(map[string]*runLog)

	err := j.Replay(func(rec []byte) error {
		wr, err := decodeRecord(rec)
		if err != nil {
			rep.DecodeErrors++
			return nil // tolerate foreign/corrupt records
		}
		if queueLifecycle(wr.Type) {
			// Queue lifecycle records belong to the scheduler's pending
			// queue (see RecoverQueue), not to any run's own log.
			return nil
		}
		rl := byName[wr.Run]
		if rl == nil || (wr.Type == EventRunLaunched && rl.launched) {
			// First sighting, or a relaunch reusing a finished run's
			// name: the newer generation supersedes the older log.
			if rl != nil {
				rl.superseded = true
			}
			rl = &runLog{name: wr.Run}
			byName[wr.Run] = rl
			order = append(order, rl)
		}
		if wr.Type == EventRunLaunched {
			rl.launched = true
			rl.dsl = wr.Strategy
			rl.tenant = wr.Tenant
		}
		if wr.Type == EventRunFinished {
			rl.status = wr.Status
		}
		rl.events = append(rl.events, wr.event())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bifrost: journal replay: %w", err)
	}

	for _, rl := range order {
		if rl.superseded {
			continue
		}
		report := func(status RunStatus, action string) {
			rep.Runs = append(rep.Runs, RecoveredRun{Name: rl.name, Status: status, Action: action})
		}
		if !rl.launched || rl.dsl == "" {
			rep.Skipped++
			report(0, "skipped: no launch record with strategy source")
			continue
		}
		s, err := ParseStrategy(rl.dsl)
		if err != nil {
			rep.Skipped++
			report(0, fmt.Sprintf("skipped: strategy source unparseable: %v", err))
			continue
		}
		// The DSL never names a tenant; re-stamp it from the journal
		// envelope so recovered runs keep their owner (and their
		// tenant-qualified routing and metric scopes).
		s.Tenant = rl.tenant

		run := &Run{
			strategy:  s,
			engine:    e,
			recovered: true,
			status:    StatusRunning,
			events:    rl.events,
			done:      make(chan struct{}),
			cancel:    make(chan struct{}),
		}
		e.mu.Lock()
		if _, exists := e.runs[s.RunKey()]; exists {
			e.mu.Unlock()
			rep.Skipped++
			report(0, "skipped: a run with this name already exists")
			continue
		}
		run.seq = e.nextSeq
		e.nextSeq++
		e.runs[s.RunKey()] = run
		e.mu.Unlock()

		// Re-open the topology assessment: traces died with the old
		// process, so resumed runs start fresh graphs; terminal runs get
		// a frozen (empty) assessment so their health surface answers.
		if e.cfg.Topology != nil {
			e.cfg.Topology.Register(s.RunKey(), s.RouteService(), s.Baseline, s.Candidate)
			if rl.status != 0 {
				e.cfg.Topology.Freeze(s.RunKey())
			}
		}

		// A topology-gated run cannot make progress without an assessor
		// (every verdict would be inconclusive until retries exhaust):
		// mirror Launch's guard by settling it with a clear reason
		// instead of letting it spin.
		if rl.status == 0 && s.hasTopologyChecks() && e.cfg.Topology == nil {
			now := e.cfg.Clock.Now()
			run.record(Event{At: now, Type: EventTransition,
				Detail: "crash-recovery: abort; strategy gates on topology checks but the engine has no topology assessor (live tracing disabled)"})
			run.finish(StatusAborted, "crash recovery: topology checks unavailable without a topology assessor")
			close(run.done)
			rep.Settled++
			report(StatusAborted, "aborted: topology checks need a topology assessor")
			continue
		}

		if rl.status != 0 {
			// Terminal before the crash: restore state and routing, no
			// new events.
			run.mu.Lock()
			run.status = rl.status
			run.mu.Unlock()
			close(run.done)
			switch rl.status {
			case StatusSucceeded:
				_ = e.routeCandidate(s)
			case StatusRolledBack:
				_ = e.routeBaseline(s)
			}
			rep.Finished++
			report(rl.status, "finished")
			continue
		}
		e.settleInterrupted(run, rl.events, rep, report)
	}
	return rep, nil
}

// settleInterrupted decides what happens to a run the previous process
// left in flight, journaling the decision as regular run events.
func (e *Engine) settleInterrupted(run *Run, events []Event, rep *RecoveryReport,
	report func(RunStatus, string)) {
	s := run.strategy
	now := e.cfg.Clock.Now()

	// The interrupted phase is the last one entered.
	idx, lastEntered := 0, -1
	for i, ev := range events {
		if ev.Type == EventPhaseEntered {
			if pi := s.phaseIndex(ev.Phase); pi >= 0 {
				idx = pi
				lastEntered = i
			}
		}
	}
	// Rebuild every phase's consumed-retry count from the journaled
	// retry transitions — not from phase-entered counts, which also
	// rise on legitimate goto revisits and would wrongly exhaust
	// MaxRetries for phases in goto loops.
	retries := make(map[string]int, len(s.Phases))
	for _, ev := range events {
		if ev.Type == EventTransition &&
			(ev.Detail == "retry" || ev.Detail == "crash-recovery: retry") {
			retries[ev.Phase]++
		}
	}

	resume := func(at int) {
		run.record(Event{At: now, Type: EventTransition, Phase: phaseName(s, idx),
			Detail: "crash-recovery: resuming at phase " + phaseName(s, at)})
		rep.Resumed++
		report(StatusRunning, "resumed at phase "+phaseName(s, at))
		go run.loopFrom(at, retries)
	}

	if lastEntered < 0 {
		// Crashed between launch and the first phase: start from the top.
		resume(0)
		return
	}

	phase := &s.Phases[idx]
	// If the phase's conclusion survived in the journal — a
	// phase-outcome record after its last entry — the crash only
	// interrupted the transition's application, not the observation.
	// Honor the recorded outcome instead of re-deciding: a journaled
	// failure must never be softened into an inconclusive re-entry (or
	// worse, a promote) just because the run-finished record was lost
	// in the fsync window.
	outcome := Outcome(0)
	for _, ev := range events[lastEntered+1:] {
		if ev.Type == EventPhaseOutcome && ev.Phase == phase.Name {
			outcome = ev.Outcome
		}
	}
	why := fmt.Sprintf("phase had concluded %s before restart", outcome)
	if outcome == 0 {
		outcome = OutcomeInconclusive
		why = "phase interrupted by restart"
		run.record(Event{At: now, Type: EventPhaseOutcome, Phase: phase.Name,
			Outcome: OutcomeInconclusive, Detail: "interrupted by restart (crash recovery)"})
	}
	// Resolve the transition exactly as the run loop would have.
	var tr Transition
	switch outcome {
	case OutcomePass:
		tr = phase.successTransition()
	case OutcomeFail:
		tr = phase.failureTransition()
	default:
		tr = phase.inconclusiveTransition()
		if tr.Kind == TransitionRetry {
			// The crash re-entry consumes one retry, on top of the ones
			// the journal already records.
			if retries[phase.Name]+1 > phase.maxRetries() {
				tr = phase.failureTransition()
				why = fmt.Sprintf("%s; retries exhausted (%d of %d consumed)",
					why, retries[phase.Name], phase.maxRetries())
			} else {
				retries[phase.Name]++
			}
		}
	}
	run.record(Event{At: now, Type: EventTransition, Phase: phase.Name,
		Detail: "crash-recovery: " + describeTransition(tr)})

	settle := func(status RunStatus) {
		run.finish(status, "crash recovery: "+why)
		close(run.done)
		rep.Settled++
		report(status, fmt.Sprintf("%s: %s", status, why))
	}
	switch tr.Kind {
	case TransitionRetry:
		resume(idx)
	case TransitionNext:
		resume(idx + 1)
	case TransitionGoto:
		resume(s.phaseIndex(tr.Target))
	case TransitionRollback:
		settle(StatusRolledBack)
	case TransitionPromote:
		settle(StatusSucceeded)
	default: // TransitionAbort and anything unknown
		settle(StatusAborted)
	}
}

// phaseName names a phase index, tolerating out-of-range (the promote
// position past the last phase).
func phaseName(s *Strategy, idx int) string {
	if idx < 0 || idx >= len(s.Phases) {
		return "(promote)"
	}
	return s.Phases[idx].Name
}

// CompactJournal drops journal generations that a relaunch of the same
// run name superseded, keeping each run's latest generation (and its
// full event history) intact. Undecodable records are dropped too.
// It is a no-op on journals without compaction support.
//
// Queue lifecycle records (run-queued / run-scheduled / run-dequeued)
// are retained only for submissions that are still pending — queued
// with no later launch or dequeue — since a consumed queue entry's
// history lives on in the run's own records.
//
// Call it while no new strategies can launch or queue — contexpd runs
// it at boot, after Recover and before the scheduler restores (and
// possibly relaunches) the queue — since a launch reusing an existing
// run name between the generation census and the rewrite would shift
// which generation is "latest".
func CompactJournal(j journal.Journal) error {
	c, ok := j.(journal.Compactor)
	if !ok {
		return nil
	}
	// Census pass: how many generations (run-launched records) each run
	// has, and — per run — the position of the last run-queued record
	// versus the last record that consumed a queue entry (a launch or a
	// dequeue). A submission is still pending iff its last queued record
	// comes after every consuming record.
	total := make(map[string]int)
	lastQueued := make(map[string]int)
	lastConsumed := make(map[string]int)
	pos := 0
	if err := j.Replay(func(rec []byte) error {
		pos++
		wr, err := decodeRecord(rec)
		if err != nil {
			return nil
		}
		switch wr.Type {
		case EventRunLaunched:
			total[wr.Run]++
			lastConsumed[wr.Run] = pos
		case EventRunQueued:
			lastQueued[wr.Run] = pos
		case EventRunDequeued:
			lastConsumed[wr.Run] = pos
		}
		return nil
	}); err != nil {
		return err
	}
	// Filter pass, in the same append order: run records survive when
	// they belong to their run's final generation; queue records survive
	// when they belong to a still-pending submission's live entry.
	seen := make(map[string]int)
	pos = 0
	return c.Compact(func(rec []byte) bool {
		pos++
		wr, err := decodeRecord(rec)
		if err != nil {
			return false
		}
		if queueLifecycle(wr.Type) {
			return lastQueued[wr.Run] > lastConsumed[wr.Run] && pos >= lastQueued[wr.Run]
		}
		if wr.Type == EventRunLaunched {
			seen[wr.Run]++
		}
		return seen[wr.Run] == total[wr.Run]
	})
}

// PendingSubmission is one still-queued strategy restored from the
// journal: a run-queued record with no later launch or dequeue for the
// same name.
type PendingSubmission struct {
	// Name is the tenant-qualified strategy (and future run) name.
	Name string
	// Strategy is the reparsed strategy.
	Strategy *Strategy
	// QueuedAt is the original submission time.
	QueuedAt time.Time
}

// RecoverQueue replays queue lifecycle records and returns the
// submissions that were still pending when the journal was written:
// queued, never launched, never dequeued. The result is in original
// submission order. Undecodable queue entries (missing or unparseable
// strategy source) are dropped with an error in the second result.
func RecoverQueue(j journal.Journal) ([]PendingSubmission, []error) {
	type entry struct {
		dsl      string
		tenant   string
		queuedAt time.Time
		pending  bool
	}
	byName := make(map[string]*entry)
	var order []string
	replayErr := j.Replay(func(rec []byte) error {
		wr, err := decodeRecord(rec)
		if err != nil {
			return nil
		}
		switch wr.Type {
		case EventRunQueued:
			if byName[wr.Run] == nil {
				byName[wr.Run] = &entry{}
			} else {
				// Re-queued after a launch or cancel: queue position is
				// submission order, so the name moves to the back.
				for i, name := range order {
					if name == wr.Run {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
			order = append(order, wr.Run)
			*byName[wr.Run] = entry{dsl: wr.Strategy, tenant: wr.Tenant, queuedAt: wr.At, pending: true}
		case EventRunLaunched, EventRunDequeued:
			if e := byName[wr.Run]; e != nil {
				e.pending = false
			}
		}
		return nil
	})
	var out []PendingSubmission
	var errs []error
	if replayErr != nil {
		// A failed replay may have cut the scan short: whatever decoded
		// before the fault is still returned, but the caller must know
		// the list can be incomplete.
		errs = append(errs, fmt.Errorf("bifrost: queue recovery replay: %w", replayErr))
	}
	for _, name := range order {
		e := byName[name]
		if !e.pending {
			continue
		}
		s, err := ParseStrategy(e.dsl)
		if err != nil {
			errs = append(errs, fmt.Errorf("bifrost: queued strategy %q unrecoverable: %w", name, err))
			continue
		}
		s.Tenant = e.tenant
		out = append(out, PendingSubmission{Name: name, Strategy: s, QueuedAt: e.queuedAt})
	}
	return out, errs
}
