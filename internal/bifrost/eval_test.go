package bifrost

import (
	"strings"
	"testing"
	"time"
)

func TestEvalFigure4_6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock measurement")
	}
	cfg := OverheadConfig{
		Requests:      150,
		ServiceTimeMs: 2,
		PhaseDuration: 400 * time.Millisecond,
		Seed:          1,
	}
	fig, err := EvalFigure4_6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.RunStatus != StatusSucceeded {
		t.Errorf("strategy = %v, phases %v", fig.RunStatus, fig.PhaseOutcomes)
	}
	if len(fig.Baseline) != cfg.Requests || len(fig.Bifrost) != cfg.Requests {
		t.Fatalf("sample counts %d/%d", len(fig.Baseline), len(fig.Bifrost))
	}
	overhead := fig.OverheadMs()
	// Localhost proxy overhead should be positive but tiny compared to
	// the paper's cross-VM 8 ms.
	if overhead < -1 || overhead > 20 {
		t.Errorf("overhead = %.2f ms, implausible", overhead)
	}
	out := fig.Render()
	for _, want := range []string{"Table 4.1", "baseline", "bifrost", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestEvalParallelStrategiesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock measurement")
	}
	cfg := ScalingConfig{
		Points:            []int{1, 8},
		RunDuration:       400 * time.Millisecond,
		CheckInterval:     50 * time.Millisecond,
		ChecksPerStrategy: 3,
	}
	res, err := EvalFigure4_7And4_8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Evaluations == 0 {
			t.Errorf("x=%d: no evaluations", p.X)
		}
		if p.BusyFraction < 0 || p.BusyFraction > 1.5 {
			t.Errorf("x=%d: busy fraction %v implausible", p.X, p.BusyFraction)
		}
		if p.MeanDelayMs < 0 || p.MeanDelayMs > float64(cfg.RunDuration/time.Millisecond) {
			t.Errorf("x=%d: mean delay %v ms implausible", p.X, p.MeanDelayMs)
		}
	}
	// More strategies evaluate more checks.
	if res.Points[1].Evaluations <= res.Points[0].Evaluations {
		t.Errorf("evaluations did not grow with strategies: %d -> %d",
			res.Points[0].Evaluations, res.Points[1].Evaluations)
	}
	if !strings.Contains(res.Render(), "strategies") {
		t.Error("render missing x label")
	}
}

func TestEvalChecksScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock measurement")
	}
	cfg := ScalingConfig{
		Points:        []int{5, 50},
		RunDuration:   400 * time.Millisecond,
		CheckInterval: 50 * time.Millisecond,
	}
	res, err := EvalFigure4_9And4_10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].Evaluations <= res.Points[0].Evaluations {
		t.Errorf("evaluations did not grow with checks: %d -> %d",
			res.Points[0].Evaluations, res.Points[1].Evaluations)
	}
}

func TestFourPhaseStrategyValid(t *testing.T) {
	s := fourPhaseStrategy(time.Second)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 4 {
		t.Errorf("phases = %d", len(s.Phases))
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{1, 2, 3, 4}, 4); len([]rune(got)) != 4 {
		t.Errorf("sparkline = %q", got)
	}
	if sparkline(nil, 5) != "" {
		t.Error("empty series should render empty")
	}
}
