package bifrost

import (
	"fmt"
	"math"
	"sort"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/fenrir"
	"contexp/internal/tenancy"
	"contexp/internal/traffic"
)

// This file adapts enactment-side strategies to Fenrir's planning-side
// model (Chapter 3), so the Scheduler can hand queued submissions to
// the genetic optimizer:
//
//   - a Strategy becomes a fenrir.Experiment whose duration is the sum
//     of its phases' dwell times, whose traffic share is the peak
//     candidate exposure across phases, and whose candidate groups are
//     the union of the phases' user groups;
//   - exclusive ownership of a service's routing table is modeled as a
//     synthetic user group ("service/<name>") every strategy on that
//     service requires, so Fenrir's users-in-at-most-one-experiment
//     constraint doubles as routing-table conflict detection;
//   - the traffic profile is flat (the scheduler plans in wall-clock
//     slots, not against a forecast), and the per-slot capacity ceiling
//     bounds the aggregate candidate exposure so a control population
//     always remains.
//
// Fenrir treats group assignment as a degree of freedom; for the
// scheduler the footprint is a requirement. The planner pins it by
// making every group preferred with a dominant coverage weight, and
// restores full masks after optimization (falling back to a greedy
// earliest-fit placement if the restored schedule is invalid).

// planSlotVolume is the synthetic per-slot traffic volume of the flat
// planning profile. Its absolute value is irrelevant — every
// experiment's RequiredSamples is nominal — it only has to be positive
// so Fenrir's sample-size constraint stays satisfiable.
const planSlotVolume = 1000

// planWeights pins group coverage: dropping a required group can gain
// at most the start weight, and always loses more coverage than that.
func planWeights() fenrir.Weights {
	return fenrir.Weights{Duration: 1, Start: 2, Coverage: 10}
}

// serviceGroup is the synthetic user group that models exclusive
// ownership of a service's routing table.
func serviceGroup(service string) expmodel.UserGroup {
	return expmodel.UserGroup("service/" + service)
}

// strategyGroups returns the deduplicated, sorted union of the user
// groups a strategy's phases restrict traffic to.
func strategyGroups(s *Strategy) []expmodel.UserGroup {
	seen := make(map[expmodel.UserGroup]bool)
	for i := range s.Phases {
		for _, g := range s.Phases[i].Traffic.Groups {
			seen[g] = true
		}
	}
	out := make([]expmodel.UserGroup, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// conflictGroups is the full conflict footprint: the service-ownership
// group plus the strategy's explicit user groups. Both are
// tenant-qualified — tenants route (and segment) disjoint user
// populations, so tenant A's "beta" group never collides with tenant
// B's, and same-named services across tenants enact concurrently.
func conflictGroups(s *Strategy) []expmodel.UserGroup {
	out := []expmodel.UserGroup{serviceGroup(s.RouteService())}
	for _, g := range strategyGroups(s) {
		out = append(out, expmodel.UserGroup(tenancy.Qualify(s.Tenant, string(g))))
	}
	return out
}

// peakShare estimates the peak share of users exposed to the candidate
// across the strategy's phases. Mirrored (dark-launch) phases expose no
// users and count as zero; the floor keeps the estimate positive, which
// Fenrir's share bounds require.
func peakShare(s *Strategy) float64 {
	var peak float64
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Traffic.Mirror {
			continue
		}
		w := p.Traffic.CandidateWeight
		for _, step := range p.Traffic.Steps {
			if step > w {
				w = step
			}
		}
		if w > peak {
			peak = w
		}
	}
	if peak < 0.01 {
		peak = 0.01
	}
	return peak
}

// estimateDuration sums the phases' nominal dwell times (gradual
// rollouts dwell one step duration per step). Retries and goto loops
// are not modeled: the estimate is a planning projection, and the
// scheduler tracks actual completion through Run.Done.
func estimateDuration(s *Strategy) time.Duration {
	var d time.Duration
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Practice == expmodel.PracticeGradualRollout {
			d += time.Duration(len(p.Traffic.Steps)) * p.Traffic.StepDuration
		} else {
			d += p.Duration
		}
	}
	return d
}

// planner builds and solves Fenrir problems for the scheduler. It keeps
// the previous problem/schedule pair so each replanning round can warm
// start through fenrir.Reevaluate instead of searching from scratch.
type planner struct {
	slotDur  time.Duration
	horizon  int
	capacity float64
	budget   int
	seed     int64

	prevProblem  *fenrir.Problem
	prevSchedule *fenrir.Schedule
}

// planRun is the planner's view of one already-launched run: a frozen
// rectangle on the time axis.
type planRun struct {
	name    string
	groups  []expmodel.UserGroup
	share   float64
	start   int // slot the run launched in
	estEnd  int // estimated exclusive end slot
	pending bool
}

// planPending is the planner's view of one queued submission.
type planPending struct {
	name   string
	groups []expmodel.UserGroup
	share  float64
	slots  int // estimated duration in slots
}

// Plan is one solved placement: the problem, the chosen schedule, and
// the per-submission projected start slots.
type Plan struct {
	Problem  *fenrir.Problem
	Schedule *fenrir.Schedule
	// Starts maps queued submission names to projected start slots.
	Starts map[string]int
	// Fitness is the schedule's fitness as a fraction of the maximum.
	Fitness float64
	// Valid reports whether the schedule passed Fenrir's constraint
	// check with full conflict footprints.
	Valid bool
}

// durationSlots converts a wall duration to planning slots (minimum 1),
// clamped to half the horizon so a single long strategy cannot render
// the whole planning instance infeasible.
func (pl *planner) durationSlots(d time.Duration) int {
	n := int(math.Ceil(float64(d) / float64(pl.slotDur)))
	if n < 1 {
		n = 1
	}
	if n > pl.horizon/2 {
		n = pl.horizon / 2
	}
	return n
}

// experiment builds the Fenrir experiment for one rectangle. Duration
// and share are pinned (Min == Max): the optimizer's only freedom is
// the start slot, which is exactly the scheduling decision.
func planExperiment(id string, groups []expmodel.UserGroup, share float64, slots, earliest, horizon int) fenrir.Experiment {
	if earliest >= horizon {
		earliest = horizon - 1
	}
	if earliest < 0 {
		earliest = 0
	}
	if slots < 1 {
		slots = 1
	}
	if share > 1 {
		share = 1
	}
	return fenrir.Experiment{
		ID:              id,
		Practice:        expmodel.PracticeCanary,
		RequiredSamples: 1, // nominal: the scheduler plans time, not samples
		MinDuration:     slots,
		MaxDuration:     slots,
		EarliestStart:   earliest,
		MinShare:        share,
		MaxShare:        share,
		CandidateGroups: groups,
		PreferredGroups: groups,
		Priority:        1,
	}
}

// fullMask assigns every candidate group of experiment i.
func fullMask(e *fenrir.Experiment) uint64 {
	return (uint64(1) << uint(len(e.CandidateGroups))) - 1
}

// Replan computes a fresh placement for the current state: running runs
// become frozen genes at their actual positions, pending submissions
// are placed by the genetic algorithm. now is the current slot.
//
// When a previous plan exists, the new problem is derived from it with
// fenrir.Reevaluate — finished and dequeued submissions leave as
// cancellations, surviving genes seed the search — which is what lets
// a run finishing early pull the queue forward without a cold search.
func (pl *planner) Replan(now int, running []planRun, pending []planPending) (*Plan, error) {
	if now < 0 || now >= pl.horizon {
		return nil, fmt.Errorf("bifrost: plan slot %d outside horizon %d", now, pl.horizon)
	}
	problem, seed := pl.warmStart(now, running, pending)
	if problem == nil {
		problem, seed = pl.coldStart(now, running, pending)
	}
	if err := problem.Validate(); err != nil {
		return nil, fmt.Errorf("bifrost: planning problem invalid: %w", err)
	}

	var schedule *fenrir.Schedule
	if len(pending) == 0 {
		// Nothing to place: every gene is frozen, so the seed IS the
		// schedule. Skipping the search keeps run-completion pumps (which
		// hold the scheduler mutex) cheap when the queue is empty.
		schedule = seed.Clone()
	} else {
		// The search budget scales with how much there is to place:
		// replanning runs under the scheduler mutex, and burning the
		// full budget to position one pending entry stalls Submit and
		// the snapshot surfaces for no planning gain.
		budget := pl.budget
		if adaptive := 500 * len(pending); adaptive < budget {
			budget = adaptive
		}
		ga := fenrir.GeneticAlgorithm{}
		schedule, _ = ga.Optimize(problem, budget, pl.seed, seed)
	}

	// Fenrir may have narrowed a group mask (assignment is its degree of
	// freedom, for us it is a requirement): restore the full footprint
	// and fall back to greedy earliest-fit placement if that breaks the
	// schedule.
	for i := range problem.Experiments {
		schedule.Genes[i].GroupMask = fullMask(&problem.Experiments[i])
	}
	valid := problem.Valid(schedule)
	if !valid {
		if greedy := greedyPlace(problem, schedule, now); greedy != nil {
			schedule, valid = greedy, problem.Valid(greedy)
		}
	}

	pl.prevProblem, pl.prevSchedule = problem, schedule

	plan := &Plan{Problem: problem, Schedule: schedule, Starts: make(map[string]int), Valid: valid}
	if max := problem.MaxFitness(); max > 0 {
		if f := problem.Fitness(schedule); f > 0 {
			plan.Fitness = f / max
		}
	}
	byID := make(map[string]bool, len(pending))
	for _, p := range pending {
		byID[p.name] = true
	}
	for i := range problem.Experiments {
		if id := problem.Experiments[i].ID; byID[id] {
			plan.Starts[id] = schedule.Genes[i].Start
		}
	}
	return plan, nil
}

// Reset drops the warm-start state (used when the slot epoch
// re-anchors).
func (pl *planner) Reset() { pl.prevProblem, pl.prevSchedule = nil, nil }

// warmStart derives the next problem from the previous one via
// fenrir.Reevaluate. Returns nil when there is no usable previous plan.
func (pl *planner) warmStart(now int, running []planRun, pending []planPending) (*fenrir.Problem, *fenrir.Schedule) {
	if pl.prevProblem == nil || pl.prevSchedule == nil {
		return nil, nil
	}
	prev, prevSched := pl.prevProblem, pl.prevSchedule.Clone()
	alive := make(map[string]bool, len(running)+len(pending))
	for _, r := range running {
		alive[r.name] = true
	}
	for _, p := range pending {
		alive[p.name] = true
	}

	runningByName := make(map[string]planRun, len(running))
	for _, r := range running {
		runningByName[r.name] = r
	}

	in := fenrir.ReevalInput{Now: now}
	known := make(map[string]bool, len(prev.Experiments))
	for i := range prev.Experiments {
		e := &prev.Experiments[i]
		known[e.ID] = true
		if !alive[e.ID] {
			// Finished or dequeued: leaves the problem regardless of what
			// its gene projected.
			in.Canceled = append(in.Canceled, e.ID)
			continue
		}
		g := &prevSched.Genes[i]
		if r, isRunning := runningByName[e.ID]; isRunning {
			// Sync the frozen rectangle with reality: a run that outlived
			// its estimate keeps occupying its service until it actually
			// finishes.
			g.Frozen = true
			g.Start = r.start
			end := r.estEnd
			if end <= now {
				end = now + 1
			}
			if end > pl.horizon {
				return nil, nil // rectangle no longer fits: cold start
			}
			g.Duration = end - g.Start
			e.EarliestStart = g.Start
			e.MinDuration, e.MaxDuration = g.Duration, g.Duration
		} else if g.Start <= now {
			// Still pending: Reevaluate must not freeze it just because
			// the projection said it would have started by now.
			g.Start = now + 1
			if g.Start+g.Duration > pl.horizon {
				return nil, nil
			}
		}
	}
	for _, p := range pending {
		if !known[p.name] {
			in.Added = append(in.Added, planExperiment(p.name, p.groups, p.share, p.slots, now, pl.horizon))
		}
	}
	for _, r := range running {
		if !known[r.name] {
			// A run the previous plan never saw (launched this pump, or
			// adopted): Reevaluate cannot add it frozen, so rebuild.
			return nil, nil
		}
	}
	res, err := fenrir.Reevaluate(prev, prevSched, in)
	if err != nil {
		return nil, nil
	}
	return res.Problem, res.Seed
}

// coldStart builds the problem and seed schedule from scratch.
func (pl *planner) coldStart(now int, running []planRun, pending []planPending) (*fenrir.Problem, *fenrir.Schedule) {
	problem := &fenrir.Problem{
		Profile:  flatProfile(pl.horizon, pl.slotDur),
		Capacity: pl.capacity,
		Weights:  planWeights(),
	}
	seed := &fenrir.Schedule{}
	for _, r := range running {
		end := r.estEnd
		if end <= now {
			end = now + 1
		}
		if end > pl.horizon {
			end = pl.horizon
		}
		start := r.start
		if start >= end {
			start = end - 1
		}
		e := planExperiment(r.name, r.groups, r.share, end-start, start, pl.horizon)
		problem.Experiments = append(problem.Experiments, e)
		seed.Genes = append(seed.Genes, fenrir.Gene{
			Start: start, Duration: end - start, Share: r.share,
			GroupMask: fullMask(&e), Frozen: true,
		})
	}
	for _, p := range pending {
		e := planExperiment(p.name, p.groups, p.share, p.slots, now, pl.horizon)
		problem.Experiments = append(problem.Experiments, e)
		seed.Genes = append(seed.Genes, fenrir.Gene{
			Start: now, Duration: p.slots, Share: p.share, GroupMask: fullMask(&e),
		})
	}
	return problem, seed
}

// flatProfile is the scheduler's planning profile: constant volume per
// slot, anchored at the zero time (the scheduler tracks wall-clock
// epochs itself).
func flatProfile(horizon int, slotDur time.Duration) *traffic.Profile {
	slots := make([]float64, horizon)
	for i := range slots {
		slots[i] = planSlotVolume
	}
	return &traffic.Profile{SlotLength: slotDur, Slots: slots}
}

// greedyPlace is the deterministic fallback placement: frozen genes
// stay, pending genes are placed one by one (in experiment order, which
// is queue order) at the earliest slot where capacity and the full
// group footprint fit. Returns nil if some experiment cannot be placed
// inside the horizon.
func greedyPlace(p *fenrir.Problem, prev *fenrir.Schedule, now int) *fenrir.Schedule {
	horizon := p.Profile.NumSlots()
	usage := make([]float64, horizon)
	busy := make(map[expmodel.UserGroup][]bool)
	out := &fenrir.Schedule{Genes: make([]fenrir.Gene, len(p.Experiments))}

	occupy := func(e *fenrir.Experiment, g fenrir.Gene) {
		for t := g.Start; t < g.End() && t < horizon; t++ {
			usage[t] += g.Share
		}
		for _, grp := range e.CandidateGroups {
			b := busy[grp]
			if b == nil {
				b = make([]bool, horizon)
				busy[grp] = b
			}
			for t := g.Start; t < g.End() && t < horizon; t++ {
				b[t] = true
			}
		}
	}
	fits := func(e *fenrir.Experiment, start, dur int, share float64) bool {
		if start+dur > horizon {
			return false
		}
		for t := start; t < start+dur; t++ {
			if usage[t]+share > p.Capacity+1e-9 {
				return false
			}
			for _, grp := range e.CandidateGroups {
				if b := busy[grp]; b != nil && b[t] {
					return false
				}
			}
		}
		return true
	}

	for i := range p.Experiments {
		if prev.Genes[i].Frozen {
			g := prev.Genes[i]
			g.GroupMask = fullMask(&p.Experiments[i])
			out.Genes[i] = g
			occupy(&p.Experiments[i], g)
		}
	}
	for i := range p.Experiments {
		if prev.Genes[i].Frozen {
			continue
		}
		e := &p.Experiments[i]
		dur, share := e.MinDuration, e.MaxShare
		earliest := e.EarliestStart
		if earliest < now {
			earliest = now
		}
		placed := false
		for start := earliest; start+dur <= horizon; start++ {
			if fits(e, start, dur, share) {
				g := fenrir.Gene{Start: start, Duration: dur, Share: share, GroupMask: fullMask(e)}
				out.Genes[i] = g
				occupy(e, g)
				placed = true
				break
			}
		}
		if !placed {
			return nil
		}
	}
	return out
}
