package bifrost

import (
	"fmt"
)

// This file implements experiment verification, the future-work
// direction of the paper's Section 1.6.4: "identify upfront whether a
// defined experiment could negatively interfere with other planned or
// currently running experiments". Verification is static — it inspects
// strategy definitions, not runtime state — so conflicts surface
// before any user is exposed.

// ConflictKind classifies a detected interference.
type ConflictKind int

// Conflict kinds.
const (
	// ConflictSameService: two strategies manipulate the routing of the
	// same service; their phases would overwrite each other's routes.
	ConflictSameService ConflictKind = iota + 1
	// ConflictSharedGroups: two strategies pin overlapping user groups
	// to candidates, so a user could be part of two experiments at
	// once, skewing both measurements (the execution-time analog of
	// Fenrir's overlap constraint).
	ConflictSharedGroups
	// ConflictVersionClash: one strategy's baseline is another's
	// candidate for the same service — their success criteria are
	// contradictory.
	ConflictVersionClash
)

// String names the kind.
func (k ConflictKind) String() string {
	switch k {
	case ConflictSameService:
		return "same-service"
	case ConflictSharedGroups:
		return "shared-groups"
	case ConflictVersionClash:
		return "version-clash"
	default:
		return fmt.Sprintf("conflict(%d)", int(k))
	}
}

// Conflict is one detected interference between two strategies.
type Conflict struct {
	Kind ConflictKind
	A, B string // strategy names
	// Detail explains the interference.
	Detail string
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s: %q <-> %q (%s)", c.Kind, c.A, c.B, c.Detail)
}

// Verify checks a set of strategies for pairwise interference. Every
// strategy must individually pass Validate first; Verify returns an
// error for invalid inputs and the (possibly empty) conflict list for
// valid ones.
func Verify(strategies []*Strategy) ([]Conflict, error) {
	for _, s := range strategies {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	var out []Conflict
	for i := 0; i < len(strategies); i++ {
		for j := i + 1; j < len(strategies); j++ {
			out = append(out, verifyPair(strategies[i], strategies[j])...)
		}
	}
	return out, nil
}

func verifyPair(a, b *Strategy) []Conflict {
	var out []Conflict
	if a.Service == b.Service {
		out = append(out, Conflict{
			Kind: ConflictSameService, A: a.Name, B: b.Name,
			Detail: fmt.Sprintf("both route service %q", a.Service),
		})
		if a.Baseline == b.Candidate || b.Baseline == a.Candidate {
			out = append(out, Conflict{
				Kind: ConflictVersionClash, A: a.Name, B: b.Name,
				Detail: fmt.Sprintf("one strategy's baseline is the other's candidate on %q", a.Service),
			})
		}
	}
	if g := sharedGroups(a, b); len(g) > 0 {
		out = append(out, Conflict{
			Kind: ConflictSharedGroups, A: a.Name, B: b.Name,
			Detail: fmt.Sprintf("user groups %v would be in both experiments", g),
		})
	}
	return out
}

// sharedGroups returns group names pinned to candidates by both
// strategies.
func sharedGroups(a, b *Strategy) []string {
	inA := make(map[string]bool)
	for i := range a.Phases {
		for _, g := range a.Phases[i].Traffic.Groups {
			inA[string(g)] = true
		}
	}
	var shared []string
	seen := make(map[string]bool)
	for i := range b.Phases {
		for _, g := range b.Phases[i].Traffic.Groups {
			if inA[string(g)] && !seen[string(g)] {
				seen[string(g)] = true
				shared = append(shared, string(g))
			}
		}
	}
	return shared
}

// LaunchVerified launches a strategy only if it does not conflict with
// any strategy currently running on the engine. The returned conflicts
// are non-nil exactly when the launch was refused.
func (e *Engine) LaunchVerified(s *Strategy) (*Run, []Conflict, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	var live []*Strategy
	e.mu.Lock()
	for _, r := range e.runs {
		if r.Status() == StatusRunning {
			live = append(live, r.strategy)
		}
	}
	e.mu.Unlock()
	var conflicts []Conflict
	for _, other := range live {
		conflicts = append(conflicts, verifyPair(s, other)...)
	}
	if len(conflicts) > 0 {
		return nil, conflicts, fmt.Errorf("bifrost: strategy %q conflicts with %d running strategies", s.Name, len(conflicts))
	}
	run, err := e.Launch(s)
	return run, nil, err
}
