package bifrost

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/clock"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// newJournalHarness is newHarness with a write-ahead journal attached.
func newJournalHarness(t *testing.T, j journal.Journal) *harness {
	t.Helper()
	h := &harness{
		sim:   clock.NewSim(t0),
		table: router.NewTable(),
		store: metrics.NewStore(0),
	}
	eng, err := NewEngine(Config{Clock: h.sim, Table: h.table, Store: h.store, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	h.engine = eng
	return h
}

// await advances the simulated clock until pred is true (or fails the
// test after a real-time deadline) — the crash-point selector: it stops
// a run mid-phase at a deterministic place in its event log.
func (h *harness) await(t *testing.T, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		if d, ok := h.sim.NextDeadline(); ok {
			h.sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func countEvents(run *Run, typ EventType, phase string) int {
	n := 0
	for _, ev := range run.Events() {
		if ev.Type == typ && (phase == "" || ev.Phase == phase) {
			n++
		}
	}
	return n
}

func TestWireRecordRoundTrip(t *testing.T) {
	ev := Event{
		At: t0, Type: EventCheckResult, Phase: "canary", Check: "latency",
		Outcome: OutcomeFail, Detail: "value=512",
	}
	rec, err := encodeEvent("my-run", "", ev, "strategy source", StatusRolledBack)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := decodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Run != "my-run" || wr.Strategy != "strategy source" || wr.Status != StatusRolledBack {
		t.Errorf("envelope fields lost: %+v", wr)
	}
	if got := wr.event(); got != ev {
		t.Errorf("event round trip: got %+v, want %+v", got, ev)
	}
	if _, err := decodeRecord([]byte("not json")); err == nil {
		t.Error("garbage record should fail to decode")
	}
	if _, err := decodeRecord([]byte(`{"type":"x"}`)); err == nil {
		t.Error("record without run should fail to decode")
	}
}

func TestRecoverFinishedRuns(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("pre-crash status = %v", run.Status())
	}
	preEvents := len(run.Events())

	// "Restart": a fresh engine, table, and store recover from the log.
	h2 := newJournalHarness(t, jnl)
	rep, err := h2.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Finished != 1 || len(rep.Runs) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	got, ok := h2.engine.Get("happy")
	if !ok {
		t.Fatal("recovered run not registered")
	}
	if got.Status() != StatusSucceeded {
		t.Errorf("recovered status = %v", got.Status())
	}
	if !got.Recovered() {
		t.Error("run not marked recovered")
	}
	if len(got.Events()) != preEvents {
		t.Errorf("recovered %d events, want %d", len(got.Events()), preEvents)
	}
	// Terminal routing is re-installed: the candidate was promoted.
	route, err := h2.table.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backends) != 1 || route.Backends[0].Version != "v2" {
		t.Errorf("recovered route = %+v", route.Backends)
	}
}

func TestRecoverResumesInterruptedRun(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-canary: at least two check evaluations in, phase not
	// concluded.
	h.await(t, func() bool {
		return countEvents(run, EventCheckResult, "canary") >= 2 &&
			countEvents(run, EventRunFinished, "") == 0
	})
	snap := jnl.Snapshot()
	preEvents := countEvents(run, EventCheckResult, "canary")

	h2 := newJournalHarness(t, snap)
	h2.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	rep, err := h2.engine.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	resumed, ok := h2.engine.Get("happy")
	if !ok {
		t.Fatal("resumed run not registered")
	}
	h2.drive(t, resumed)
	if resumed.Status() != StatusSucceeded {
		t.Fatalf("resumed run status = %v; events %+v", resumed.Status(), resumed.Events())
	}
	// Pre-crash history is intact and the canary phase was re-entered.
	if got := countEvents(resumed, EventCheckResult, "canary"); got < preEvents+1 {
		t.Errorf("check results = %d, want > %d (pre-crash history + resumed checks)", got, preEvents)
	}
	if got := countEvents(resumed, EventPhaseEntered, "canary"); got != 2 {
		t.Errorf("canary entered %d times, want 2 (original + resume)", got)
	}
	var sawRecovery bool
	for _, ev := range resumed.Events() {
		if ev.Type == EventTransition && strings.Contains(ev.Detail, "crash-recovery") {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no crash-recovery transition recorded")
	}
	// Final routing: candidate promoted.
	route, _ := h2.table.Route("catalog")
	if len(route.Backends) != 1 || route.Backends[0].Version != "v2" {
		t.Errorf("final route = %+v", route.Backends)
	}
}

func TestRecoverRollsBackWhenRetriesExhausted(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].MaxRetries = 1
	// No metrics: the phase concludes inconclusive and retries.
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	// Crash during the second entry (the one retry is consumed).
	h.await(t, func() bool {
		return countEvents(run, EventPhaseEntered, "canary") == 2 &&
			countEvents(run, EventRunFinished, "") == 0
	})
	snap := jnl.Snapshot()

	h2 := newJournalHarness(t, snap)
	rep, err := h2.engine.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Settled != 1 {
		t.Fatalf("report = %+v", rep)
	}
	settled, _ := h2.engine.Get("happy")
	if settled.Status() != StatusRolledBack {
		t.Fatalf("status = %v, want rolled-back (retries exhausted)", settled.Status())
	}
	var why string
	for _, ev := range settled.Events() {
		if ev.Type == EventRunFinished {
			why = ev.Detail
		}
	}
	if !strings.Contains(why, "retries exhausted") {
		t.Errorf("run-finished detail = %q, want reason recorded", why)
	}
	// Users are back on the baseline.
	route, err := h2.table.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backends) != 1 || route.Backends[0].Version != "v1" {
		t.Errorf("rollback route = %+v", route.Backends)
	}
}

func TestRecoverHonorsInconclusiveTransition(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	// The strategy says an inconclusive canary rolls back — so a crash
	// mid-canary must too, not re-enter.
	s.Phases[0].OnInconclusive = Transition{Kind: TransitionRollback}
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.await(t, func() bool { return countEvents(run, EventCheckResult, "canary") >= 1 })
	snap := jnl.Snapshot()

	h2 := newJournalHarness(t, snap)
	rep, err := h2.engine.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Settled != 1 || rep.Resumed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	settled, _ := h2.engine.Get("happy")
	if settled.Status() != StatusRolledBack {
		t.Errorf("status = %v, want rolled-back per strategy transition", settled.Status())
	}
}

func TestRecoverHonorsJournaledPhaseOutcome(t *testing.T) {
	// The phase CONCLUDED as failed before the crash — the rollback's
	// run-finished record was lost in the fsync window. Recovery must
	// honor the journaled failure, even with an adversarial
	// "on inconclusive -> promote" that a re-decided inconclusive
	// outcome would follow straight to promotion.
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].OnInconclusive = Transition{Kind: TransitionPromote}
	jnl := journal.NewMemory()
	appendRec := func(ev Event, dsl string, status RunStatus) {
		t.Helper()
		rec, err := encodeEvent(s.Name, "", ev, dsl, status)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(Event{At: t0, Type: EventRunLaunched}, WriteDSL(s), 0)
	appendRec(Event{At: t0, Type: EventPhaseEntered, Phase: "canary"}, "", 0)
	appendRec(Event{At: t0.Add(time.Second), Type: EventPhaseOutcome, Phase: "canary",
		Outcome: OutcomeFail}, "", 0)
	appendRec(Event{At: t0.Add(time.Second), Type: EventTransition, Phase: "canary",
		Detail: "rollback"}, "", 0)

	h := newJournalHarness(t, jnl)
	rep, err := h.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Settled != 1 {
		t.Fatalf("report = %+v", rep)
	}
	run, _ := h.engine.Get(s.Name)
	if run.Status() != StatusRolledBack {
		t.Fatalf("status = %v, want rolled-back (journaled failure must not be re-decided)", run.Status())
	}
	route, err := h.table.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backends) != 1 || route.Backends[0].Version != "v1" {
		t.Errorf("route = %+v, want baseline", route.Backends)
	}
	var why string
	for _, ev := range run.Events() {
		if ev.Type == EventRunFinished {
			why = ev.Detail
		}
	}
	if !strings.Contains(why, "concluded fail") {
		t.Errorf("run-finished detail = %q, want journaled conclusion cited", why)
	}
}

func TestRecoverHonorsJournaledPassOutcome(t *testing.T) {
	// Conversely, a journaled pass resumes at the NEXT phase instead of
	// re-running the one that already passed.
	s := twoPhaseStrategy()
	jnl := journal.NewMemory()
	for _, rec := range []struct {
		ev     Event
		dsl    string
		status RunStatus
	}{
		{Event{At: t0, Type: EventRunLaunched}, WriteDSL(s), 0},
		{Event{At: t0, Type: EventPhaseEntered, Phase: "canary"}, "", 0},
		{Event{At: t0.Add(time.Minute), Type: EventPhaseOutcome, Phase: "canary",
			Outcome: OutcomePass}, "", 0},
	} {
		b, err := encodeEvent(s.Name, "", rec.ev, rec.dsl, rec.status)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	rep, err := h.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	run, _ := h.engine.Get(s.Name)
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
	// The canary is not re-entered: only the journaled entry remains.
	if got := countEvents(run, EventPhaseEntered, "canary"); got != 1 {
		t.Errorf("canary entered %d times, want 1 (passed before crash)", got)
	}
	if got := countEvents(run, EventPhaseEntered, "ab"); got != 1 {
		t.Errorf("ab entered %d times, want 1 (resume point)", got)
	}
}

func TestRecoverCrashBeforeFirstPhase(t *testing.T) {
	// A journal holding only the launch record: the run crashed before
	// entering any phase and resumes from the top.
	s := twoPhaseStrategy()
	rec, err := encodeEvent(s.Name, "", Event{At: t0, Type: EventRunLaunched}, WriteDSL(s), 0)
	if err != nil {
		t.Fatal(err)
	}
	jnl := journal.NewMemory()
	if err := jnl.Append(rec); err != nil {
		t.Fatal(err)
	}

	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	rep, err := h.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	run, _ := h.engine.Get(s.Name)
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	// First recovery settles an interrupted run and journals the
	// decision; a second recovery from the same journal must land on the
	// same terminal state without re-deciding.
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].OnInconclusive = Transition{Kind: TransitionRollback}
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.await(t, func() bool { return countEvents(run, EventPhaseEntered, "canary") == 1 })
	snap := jnl.Snapshot()

	h2 := newJournalHarness(t, snap)
	if _, err := h2.engine.Recover(snap); err != nil {
		t.Fatal(err)
	}
	first, _ := h2.engine.Get("happy")
	if first.Status() != StatusRolledBack {
		t.Fatalf("first recovery status = %v", first.Status())
	}

	h3 := newJournalHarness(t, snap)
	rep, err := h3.engine.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Finished != 1 || rep.Settled != 0 {
		t.Fatalf("second recovery re-decided: %+v", rep)
	}
	second, _ := h3.engine.Get("happy")
	if second.Status() != StatusRolledBack {
		t.Errorf("second recovery status = %v", second.Status())
	}
}

func TestRecoverRelaunchedNameKeepsLatestGeneration(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 30*time.Minute, 50)
	run1, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run1)
	run2, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run2)

	h2 := newJournalHarness(t, jnl)
	rep, err := h2.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.engine.Runs()) != 1 {
		t.Fatalf("recovered %d runs for one reused name, want 1 (report %+v)", len(h2.engine.Runs()), rep)
	}
	got, _ := h2.engine.Get("happy")
	// The second generation's log is the one kept: its event count
	// matches run2, not run1+run2.
	if len(got.Events()) != len(run2.Events()) {
		t.Errorf("recovered %d events, want the latest generation's %d", len(got.Events()), len(run2.Events()))
	}
}

func TestRunsReturnsLaunchOrder(t *testing.T) {
	h := newHarness(t)
	// Names chosen so launch order and name order disagree.
	names := []string{"zeta", "alpha", "mike", "bravo"}
	for _, name := range names {
		s := twoPhaseStrategy()
		s.Name = name
		s.Service = "svc-" + name
		h.seedMetrics("response_time", s.Service, "v2", "", 10*time.Minute, 50)
		if _, err := h.engine.Launch(s); err != nil {
			t.Fatal(err)
		}
	}
	runs := h.engine.Runs()
	if len(runs) != len(names) {
		t.Fatalf("Runs() = %d entries", len(runs))
	}
	for i, r := range runs {
		if r.Strategy().Name != names[i] {
			t.Errorf("Runs()[%d] = %q, want %q (launch order)", i, r.Strategy().Name, names[i])
		}
	}
	for _, r := range runs {
		r.Abort()
		h.drive(t, r)
	}
}

func TestFileJournalCrashRecovery(t *testing.T) {
	// The full durable path: a FileLog-backed engine is abandoned
	// mid-run (the crash), and a second engine recovers from the same
	// directory — the contexpd --data-dir kill/restart flow without the
	// process boundary.
	dir := t.TempDir()
	log1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := newJournalHarness(t, log1)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.await(t, func() bool {
		return countEvents(run, EventCheckResult, "canary") >= 2 &&
			countEvents(run, EventRunFinished, "") == 0
	})
	preEvents := len(run.Events())
	if err := log1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: the first engine's goroutines stay parked on its simulated
	// clock, which is never advanced again. Closing log1 releases the
	// directory flock (as process death would); the on-disk state is
	// exactly what the Sync left.
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	log2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	h2 := newJournalHarness(t, log2)
	h2.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	rep, err := h2.engine.Recover(log2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	resumed, _ := h2.engine.Get("happy")
	h2.drive(t, resumed)
	if resumed.Status() != StatusSucceeded {
		t.Fatalf("status = %v", resumed.Status())
	}
	if len(resumed.Events()) <= preEvents {
		t.Errorf("history shrank: %d events, had %d before crash", len(resumed.Events()), preEvents)
	}
}

func TestRecoverGotoRevisitsDoNotExhaustRetries(t *testing.T) {
	// Phase "canary" was legitimately re-entered via goto (not retry)
	// before the crash. Re-entry budgeting must count journaled retry
	// transitions, not phase entries, or the goto revisit would be
	// mistaken for an exhausted retry and the run rolled back.
	s := twoPhaseStrategy()
	s.Phases[0].OnSuccess = Transition{Kind: TransitionGoto, Target: "ab"}
	s.Phases[1].OnFailure = Transition{Kind: TransitionGoto, Target: "canary"}
	jnl := journal.NewMemory()
	appendRec := func(ev Event, dsl string) {
		t.Helper()
		rec, err := encodeEvent(s.Name, "", ev, dsl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(Event{At: t0, Type: EventRunLaunched}, WriteDSL(s))
	appendRec(Event{At: t0, Type: EventPhaseEntered, Phase: "canary"}, "")
	appendRec(Event{At: t0, Type: EventPhaseOutcome, Phase: "canary", Outcome: OutcomePass}, "")
	appendRec(Event{At: t0, Type: EventTransition, Phase: "canary", Detail: "goto ab"}, "")
	appendRec(Event{At: t0, Type: EventPhaseEntered, Phase: "ab"}, "")
	appendRec(Event{At: t0, Type: EventPhaseOutcome, Phase: "ab", Outcome: OutcomeFail}, "")
	appendRec(Event{At: t0, Type: EventTransition, Phase: "ab", Detail: "goto canary"}, "")
	appendRec(Event{At: t0, Type: EventPhaseEntered, Phase: "canary"}, "")
	// Crash mid-second-canary, no outcome recorded.

	h := newJournalHarness(t, jnl)
	rep, err := h.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 || rep.Settled != 0 {
		t.Fatalf("report = %+v, want resume (goto revisits are not retries)", rep)
	}
	run, _ := h.engine.Get(s.Name)
	run.Abort()
	h.drive(t, run)
}

func TestCompactJournalDropsSupersededGenerations(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	h.seedMetrics("response_time", "catalog", "v2", "", 30*time.Minute, 50)
	run1, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run1)
	run2, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run2)

	if err := CompactJournal(jnl); err != nil {
		t.Fatal(err)
	}
	launches := 0
	total := 0
	if err := jnl.Replay(func(rec []byte) error {
		total++
		wr, err := decodeRecord(rec)
		if err != nil {
			t.Fatalf("compacted journal holds undecodable record: %v", err)
		}
		if wr.Type == EventRunLaunched {
			launches++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if launches != 1 {
		t.Errorf("run-launched records after compaction = %d, want 1 (latest generation)", launches)
	}
	if total != len(run2.Events()) {
		t.Errorf("compacted journal has %d records, want the latest generation's %d", total, len(run2.Events()))
	}
	// The compacted journal still recovers cleanly.
	h2 := newJournalHarness(t, jnl)
	rep, err := h2.engine.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Finished != 1 {
		t.Fatalf("report after compaction = %+v", rep)
	}
}
