package bifrost

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

// validStrategy returns a structurally sound two-phase strategy.
func validStrategy() *Strategy {
	return &Strategy{
		Name:      "test",
		Service:   "catalog",
		Baseline:  "v1",
		Candidate: "v2",
		Phases: []Phase{
			{
				Name:     "canary",
				Practice: expmodel.PracticeCanary,
				Traffic:  TrafficSpec{CandidateWeight: 0.05},
				Duration: 10 * time.Minute,
				Checks: []Check{{
					Name: "latency", Metric: "response_time",
					Aggregation: metrics.AggP95, Upper: true, Threshold: 250,
					Interval: 10 * time.Second,
				}},
			},
			{
				Name:     "rollout",
				Practice: expmodel.PracticeGradualRollout,
				Traffic: TrafficSpec{
					Steps:        []float64{0.25, 0.5, 1.0},
					StepDuration: 5 * time.Minute,
				},
				OnSuccess: Transition{Kind: TransitionPromote},
			},
		},
	}
}

func TestStrategyValidateOK(t *testing.T) {
	if err := validStrategy().Validate(); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
}

func TestStrategyValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Strategy)
		wantSub string
	}{
		{"no name", func(s *Strategy) { s.Name = "" }, "without name"},
		{"no service", func(s *Strategy) { s.Service = "" }, "required"},
		{"same versions", func(s *Strategy) { s.Candidate = s.Baseline }, "both"},
		{"no phases", func(s *Strategy) { s.Phases = nil }, "no phases"},
		{"unnamed phase", func(s *Strategy) { s.Phases[0].Name = "" }, "without name"},
		{"duplicate phase", func(s *Strategy) { s.Phases[1].Name = "canary" }, "duplicate"},
		{"no practice", func(s *Strategy) { s.Phases[0].Practice = 0 }, "practice is required"},
		{"zero duration", func(s *Strategy) { s.Phases[0].Duration = 0 }, "duration is required"},
		{"no traffic", func(s *Strategy) { s.Phases[0].Traffic.CandidateWeight = 0 }, "routes no traffic"},
		{"weight above 1", func(s *Strategy) { s.Phases[0].Traffic.CandidateWeight = 1.5 }, "outside"},
		{"rollout no steps", func(s *Strategy) { s.Phases[1].Traffic.Steps = nil }, "without steps"},
		{"rollout no step duration", func(s *Strategy) { s.Phases[1].Traffic.StepDuration = 0 }, "step duration"},
		{"rollout decreasing steps", func(s *Strategy) { s.Phases[1].Traffic.Steps = []float64{0.5, 0.25} }, "must increase"},
		{"check no name", func(s *Strategy) { s.Phases[0].Checks[0].Name = "" }, "without name"},
		{"check no metric", func(s *Strategy) { s.Phases[0].Checks[0].Metric = "" }, "metric is required"},
		{"check no aggregation", func(s *Strategy) { s.Phases[0].Checks[0].Aggregation = 0 }, "aggregation"},
		{"goto unknown phase", func(s *Strategy) {
			s.Phases[0].OnSuccess = Transition{Kind: TransitionGoto, Target: "ghost"}
		}, "unknown phase"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validStrategy()
			tt.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestDarkLaunchValidation(t *testing.T) {
	s := validStrategy()
	s.Phases[0].Practice = expmodel.PracticeDarkLaunch
	s.Phases[0].Traffic = TrafficSpec{} // no mirror
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "mirror") {
		t.Errorf("dark launch without mirror: %v", err)
	}
	s.Phases[0].Traffic.Mirror = true
	if err := s.Validate(); err != nil {
		t.Errorf("dark launch with mirror rejected: %v", err)
	}
}

func TestRelativeCheckValidation(t *testing.T) {
	s := validStrategy()
	s.Phases[0].Checks[0].Scope = ScopeRelative
	s.Phases[0].Checks[0].Threshold = 0
	if err := s.Validate(); err == nil {
		t.Error("relative check with zero factor should fail")
	}
}

func TestDefaultTransitions(t *testing.T) {
	p := &Phase{}
	if got := p.successTransition(); got.Kind != TransitionNext {
		t.Errorf("default success = %v", got)
	}
	if got := p.failureTransition(); got.Kind != TransitionRollback {
		t.Errorf("default failure = %v", got)
	}
	if got := p.inconclusiveTransition(); got.Kind != TransitionRetry {
		t.Errorf("default inconclusive = %v", got)
	}
	if p.maxRetries() != 1 {
		t.Errorf("default retries = %d", p.maxRetries())
	}
	p.MaxRetries = 3
	if p.maxRetries() != 3 {
		t.Errorf("retries = %d", p.maxRetries())
	}
}

func TestPhaseIndex(t *testing.T) {
	s := validStrategy()
	if s.phaseIndex("canary") != 0 || s.phaseIndex("rollout") != 1 {
		t.Error("phaseIndex wrong")
	}
	if s.phaseIndex("ghost") != -1 {
		t.Error("unknown phase should return -1")
	}
}

func TestStateMachineRender(t *testing.T) {
	s := validStrategy()
	s.Phases[0].Checks = append(s.Phases[0].Checks, Check{
		Name: "regression", Metric: "response_time", Aggregation: metrics.AggMean,
		Scope: ScopeRelative, Upper: true, Threshold: 1.25,
	})
	out := s.StateMachine()
	for _, want := range []string{"canary", "rollout", "gradual-rollout", "vs baseline",
		"success -> next", "failure -> rollback", "promote", "p95(response_time) <= 250"} {
		if !strings.Contains(out, want) {
			t.Errorf("StateMachine missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeAndStatusStrings(t *testing.T) {
	if OutcomePass.String() != "pass" || OutcomeFail.String() != "fail" ||
		OutcomeInconclusive.String() != "inconclusive" {
		t.Error("outcome names wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should stringify")
	}
	for _, k := range []TransitionKind{TransitionNext, TransitionGoto, TransitionRollback,
		TransitionPromote, TransitionRetry, TransitionAbort} {
		if k.String() == "" {
			t.Error("transition kind should stringify")
		}
	}
	for _, st := range []RunStatus{StatusRunning, StatusSucceeded, StatusRolledBack, StatusAborted} {
		if st.String() == "" {
			t.Error("status should stringify")
		}
	}
	if RunStatus(9).String() == "" || TransitionKind(9).String() == "" {
		t.Error("unknown values should stringify")
	}
}
