package bifrost

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

func TestWriteDSLRoundTripSample(t *testing.T) {
	orig, err := ParseStrategy(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	rendered := WriteDSL(orig)
	back, err := ParseStrategy(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed the strategy:\noriginal: %+v\nback:     %+v", orig, back)
	}
}

// randomStrategy generates a structurally valid strategy for the
// round-trip property test.
func randomStrategy(rng *rand.Rand) *Strategy {
	s := &Strategy{
		Name:      "strat",
		Service:   "svc",
		Baseline:  "v1",
		Candidate: "v2",
	}
	nPhases := 1 + rng.Intn(4)
	for i := 0; i < nPhases; i++ {
		p := Phase{Name: "phase-" + string(rune('a'+i))}
		switch rng.Intn(4) {
		case 0:
			p.Practice = expmodel.PracticeCanary
			p.Traffic.CandidateWeight = float64(1+rng.Intn(99)) / 100
			p.Duration = time.Duration(1+rng.Intn(60)) * time.Minute
		case 1:
			p.Practice = expmodel.PracticeABTest
			p.Traffic.CandidateWeight = 0.5
			p.Duration = time.Duration(1+rng.Intn(24)) * time.Hour
		case 2:
			p.Practice = expmodel.PracticeDarkLaunch
			p.Traffic.Mirror = true
			p.Duration = time.Duration(1+rng.Intn(60)) * time.Minute
		default:
			p.Practice = expmodel.PracticeGradualRollout
			nSteps := 1 + rng.Intn(4)
			for j := 0; j < nSteps; j++ {
				p.Traffic.Steps = append(p.Traffic.Steps, float64(j+1)/float64(nSteps))
			}
			p.Traffic.StepDuration = time.Duration(1+rng.Intn(30)) * time.Minute
		}
		if rng.Intn(2) == 0 {
			p.MinSamples = 1 + rng.Intn(1000)
		}
		if rng.Intn(2) == 0 {
			p.MaxRetries = 1 + rng.Intn(3)
		}
		nChecks := rng.Intn(3)
		for j := 0; j < nChecks; j++ {
			c := Check{
				Name:        "check-" + string(rune('a'+j)),
				Metric:      "response_time",
				Aggregation: []metrics.Aggregation{metrics.AggMean, metrics.AggP95, metrics.AggCount}[rng.Intn(3)],
				Scope:       []CheckScope{ScopeCandidate, ScopeBaseline, ScopeRelative}[rng.Intn(3)],
				Upper:       rng.Intn(2) == 0,
				Threshold:   float64(1 + rng.Intn(500)),
			}
			if c.Scope == ScopeRelative {
				c.Threshold = 1 + rng.Float64() // positive factor
			}
			if rng.Intn(2) == 0 {
				c.Window = time.Duration(1+rng.Intn(120)) * time.Second
			}
			if rng.Intn(2) == 0 {
				c.Interval = time.Duration(1+rng.Intn(60)) * time.Second
			}
			if rng.Intn(2) == 0 {
				c.FailuresToTrip = 1 + rng.Intn(5)
			}
			p.Checks = append(p.Checks, c)
		}
		// Transitions: zero value (default) or explicit.
		trs := []Transition{
			{}, {Kind: TransitionNext}, {Kind: TransitionRollback},
			{Kind: TransitionPromote}, {Kind: TransitionRetry}, {Kind: TransitionAbort},
		}
		p.OnSuccess = trs[rng.Intn(len(trs))]
		p.OnFailure = trs[rng.Intn(len(trs))]
		p.OnInconclusive = trs[rng.Intn(len(trs))]
		s.Phases = append(s.Phases, p)
	}
	// Add one goto to a known phase for coverage.
	if len(s.Phases) > 1 {
		s.Phases[0].OnSuccess = Transition{Kind: TransitionGoto, Target: s.Phases[len(s.Phases)-1].Name}
	}
	return s
}

func TestWriteDSLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		orig := randomStrategy(rng)
		if err := orig.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid strategy: %v", trial, err)
		}
		rendered := WriteDSL(orig)
		back, err := ParseStrategy(rendered)
		if err != nil {
			t.Fatalf("trial %d: re-parse failed: %v\n%s", trial, err, rendered)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("trial %d: round trip diverged\noriginal: %+v\nback:     %+v\nsource:\n%s",
				trial, orig, back, rendered)
		}
	}
}

func TestWriteDSLFractionalTraffic(t *testing.T) {
	s := validStrategy()
	s.Phases[0].Traffic.CandidateWeight = 0.125 // 12.5%: not an integer percent
	out := WriteDSL(s)
	back, err := ParseStrategy(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.Phases[0].Traffic.CandidateWeight != 0.125 {
		t.Errorf("weight = %v", back.Phases[0].Traffic.CandidateWeight)
	}
}
