package bifrost

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contexp/internal/clock"
	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// --- tick cache ---

func TestTickCacheSingleFlight(t *testing.T) {
	tc := newTickCache()
	k := tickKey{metric: "rt", since: 1, agg: metrics.AggMean, now: 100}
	var computes atomic.Int64
	gate := make(chan struct{})

	const readers = 16
	var wg sync.WaitGroup
	vals := make([]float64, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := tc.query(k, func() (float64, error) {
				computes.Add(1)
				<-gate // hold the computation open so every reader piles on
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let the single in-flight computation accumulate waiters, then
	// release it.
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times; want single-flight (1)", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("reader %d got %v; want 42", i, v)
		}
	}
	if hits, misses := tc.hits.Load(), tc.misses.Load(); misses != 1 || hits != readers-1 {
		t.Fatalf("hits=%d misses=%d; want %d/1", hits, misses, readers-1)
	}
}

func TestTickCacheSweepsOlderInstants(t *testing.T) {
	tc := newTickCache()
	compute := func(v float64) func() (float64, error) {
		return func() (float64, error) { return v, nil }
	}
	for i := 0; i < 50; i++ {
		k := tickKey{metric: fmt.Sprintf("m%d", i), now: 100}
		if _, err := tc.query(k, compute(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(tc.entries); n != 50 {
		t.Fatalf("entries = %d; want 50", n)
	}
	// A newer instant obsoletes every earlier entry.
	if _, err := tc.query(tickKey{metric: "m0", now: 200}, compute(1)); err != nil {
		t.Fatal(err)
	}
	if n := len(tc.entries); n != 1 {
		t.Fatalf("entries after sweep = %d; want 1", n)
	}
	if tc.newest != 200 {
		t.Fatalf("newest = %d; want 200", tc.newest)
	}
}

func TestTickCacheBounded(t *testing.T) {
	tc := newTickCache()
	// Same instant throughout: nothing is sweepable, so the map must
	// stop growing at the hard bound.
	for i := 0; i < maxTickEntries+100; i++ {
		k := tickKey{metric: fmt.Sprintf("m%d", i), now: 7}
		if _, err := tc.query(k, func() (float64, error) { return 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(tc.entries); n > maxTickEntries+1 {
		t.Fatalf("entries = %d; want <= %d", n, maxTickEntries+1)
	}
}

// --- dispatcher ---

// scriptedEvaluator replaces the metric evaluator with a scripted one:
// per-check artificial latency (keyed by check name) and an optional
// engine-wide block. Everything passes, so runs complete promptly.
type scriptedEvaluator struct {
	delays map[string]time.Duration
	block  chan struct{} // when non-nil, Evaluate waits for close
	calls  atomic.Int64
}

func (se *scriptedEvaluator) Evaluate(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult {
	se.calls.Add(1)
	if se.block != nil {
		<-se.block
	}
	if d := se.delays[c.Name]; d > 0 {
		time.Sleep(d)
	}
	return CheckResult{Outcome: OutcomePass, Value: 1}
}

// multiCheckStrategy builds a one-phase strategy with n metric checks
// named c0..c(n-1), all on the same interval.
func multiCheckStrategy(tenant, service string, n int, interval, dur time.Duration) *Strategy {
	checks := make([]Check, n)
	for i := range checks {
		checks[i] = Check{
			Name: fmt.Sprintf("c%d", i), Metric: "response_time",
			Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
			Interval: interval,
		}
	}
	return &Strategy{
		Name: "strat-" + service, Tenant: tenant, Service: service,
		Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic:  TrafficSpec{CandidateWeight: 0.1},
			Duration: dur,
			Checks:   checks,
			OnSuccess: Transition{
				Kind: TransitionPromote,
			},
		}},
	}
}

// TestDispatchPreservesEventOrder runs a multi-check phase with
// deliberately skewed per-check latencies through a wide pool and
// asserts the event trail still lists every tick's results in check
// declaration order — the dispatcher may evaluate out of order but must
// never record out of order.
func TestDispatchPreservesEventOrder(t *testing.T) {
	sim := clock.NewSim(t0)
	eng, err := NewEngine(Config{
		Clock: sim, Table: router.NewTable(), Store: metrics.NewStore(0),
		EvalWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// c0 is the slowest, c2 the fastest: finish order is the reverse of
	// declaration order, which is exactly what must not leak into the
	// trail.
	eng.evaluators[CheckMetric] = &scriptedEvaluator{delays: map[string]time.Duration{
		"c0": 4 * time.Millisecond,
		"c1": 2 * time.Millisecond,
		"c2": 0,
	}}

	run, err := eng.Launch(multiCheckStrategy("", "catalog", 3, 10*time.Second, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-run.Done():
		default:
			if time.Now().After(deadline) {
				t.Fatalf("run did not finish; status=%v", run.Status())
			}
			if d, ok := sim.NextDeadline(); ok {
				sim.AdvanceTo(d)
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		break
	}
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}

	var seq []string
	for _, ev := range run.Events() {
		if ev.Type == EventCheckResult {
			seq = append(seq, ev.Check)
		}
	}
	if len(seq) == 0 || len(seq)%3 != 0 {
		t.Fatalf("check-result count = %d; want a positive multiple of 3 (%v)", len(seq), seq)
	}
	for i := 0; i < len(seq); i += 3 {
		if seq[i] != "c0" || seq[i+1] != "c1" || seq[i+2] != "c2" {
			t.Fatalf("tick %d recorded out of order: %v", i/3, seq[i:i+3])
		}
	}
}

// TestDispatchStalledEvaluatorNoStarvation saturates a two-slot pool
// with evaluations that block indefinitely and verifies that unrelated
// runs still finish: the try-acquire fallback evaluates inline on the
// run's own goroutine, so progress never depends on another run
// releasing a pool slot.
func TestDispatchStalledEvaluatorNoStarvation(t *testing.T) {
	eng, err := NewEngine(Config{
		Clock: clock.Real{}, Table: router.NewTable(), Store: metrics.NewStore(0),
		EvalWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	stalled := &scriptedEvaluator{block: release}
	fast := &scriptedEvaluator{}
	eng.evaluators[CheckMetric] = evaluatorSwitch{stalled: stalled, fast: fast}

	// Two stalled runs × two checks each: enough blocked evaluations to
	// hold both pool slots (and their own run goroutines) indefinitely.
	var slowRuns []*Run
	for i := 0; i < 2; i++ {
		s := multiCheckStrategy(fmt.Sprintf("t%d", i), "slow-svc", 2, 5*time.Millisecond, 30*time.Millisecond)
		run, err := eng.Launch(s)
		if err != nil {
			t.Fatal(err)
		}
		slowRuns = append(slowRuns, run)
	}
	// Give the stalled evaluations time to claim the pool.
	time.Sleep(20 * time.Millisecond)

	var fastRuns []*Run
	for i := 0; i < 4; i++ {
		s := multiCheckStrategy(fmt.Sprintf("t%d", i), "fast-svc", 3, 5*time.Millisecond, 30*time.Millisecond)
		run, err := eng.Launch(s)
		if err != nil {
			t.Fatal(err)
		}
		fastRuns = append(fastRuns, run)
	}
	for i, run := range fastRuns {
		select {
		case <-run.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("fast run %d starved behind stalled evaluators", i)
		}
		if run.Status() != StatusSucceeded {
			t.Fatalf("fast run %d status = %v", i, run.Status())
		}
	}

	close(release)
	for i, run := range slowRuns {
		select {
		case <-run.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("slow run %d did not finish after release", i)
		}
	}
	if st := eng.EvalPlane(); st.InlineEvals == 0 {
		t.Error("expected inline fallback evaluations while the pool was saturated")
	}
}

// evaluatorSwitch routes slow-svc checks to the stalled script and
// everything else to the fast one.
type evaluatorSwitch struct {
	stalled, fast *scriptedEvaluator
}

func (es evaluatorSwitch) Evaluate(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult {
	if s.Service == "slow-svc" {
		return es.stalled.Evaluate(s, p, c, now)
	}
	return es.fast.Evaluate(s, p, c, now)
}

// TestDispatchManyRunsManyTenants drives 24 multi-check runs across 6
// tenants to completion on one simulated clock — under -race this is
// the dispatcher's concurrency soak — and then checks every run's
// event trail independently: status, per-tick check order, and
// non-decreasing timestamps.
func TestDispatchManyRunsManyTenants(t *testing.T) {
	sim := clock.NewSim(t0)
	store := metrics.NewStore(0)
	eng, err := NewEngine(Config{
		Clock: sim, Table: router.NewTable(), Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}

	const tenants, perTenant = 6, 4
	var runs []*Run
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for si := 0; si < perTenant; si++ {
			svc := fmt.Sprintf("svc-%d", si)
			// Healthy candidate metrics for every run's scope.
			scope := metrics.Scope{Tenant: tenant, Service: svc, Version: "v2"}
			for ts := time.Duration(0); ts <= 2*time.Minute; ts += time.Second {
				store.Record("response_time", scope, t0.Add(ts), 50)
			}
			run, err := eng.Launch(multiCheckStrategy(tenant, svc, 3, 5*time.Second, time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, run)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		allDone := true
		for _, r := range runs {
			select {
			case <-r.Done():
			default:
				allDone = false
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runs did not finish")
		}
		if d, ok := sim.NextDeadline(); ok {
			sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}

	for _, r := range runs {
		if r.Status() != StatusSucceeded {
			t.Errorf("run %s status = %v", r.Strategy().RunKey(), r.Status())
		}
		events := r.Events()
		var seq []string
		for i, ev := range events {
			if i > 0 && ev.At.Before(events[i-1].At) {
				t.Errorf("run %s: event %d at %v before predecessor %v",
					r.Strategy().RunKey(), i, ev.At, events[i-1].At)
			}
			if ev.Type == EventCheckResult {
				seq = append(seq, ev.Check)
			}
		}
		for i := 0; i+2 < len(seq); i += 3 {
			if seq[i] != "c0" || seq[i+1] != "c1" || seq[i+2] != "c2" {
				t.Errorf("run %s tick %d out of order: %v", r.Strategy().RunKey(), i/3, seq[i:i+3])
			}
		}
	}

	// Co-scheduled identical queries under the simulated clock must have
	// coalesced: same metric, same instants, per-tenant scopes differ but
	// sibling checks within a run share one query.
	if st := eng.EvalPlane(); st.CacheHits == 0 {
		t.Errorf("expected tick-cache hits from coalesced sibling checks; stats %+v", st)
	}
}

// TestDispatchEventTrailsWorkerCountInvariant replays one strategy on
// engines configured serial (EvalWorkers=1, cache off) and wide
// (EvalWorkers=16) and requires the two event trails to be identical
// field for field — the determinism contract CI's eval-scale scenario
// step enforces end to end.
func TestDispatchEventTrailsWorkerCountInvariant(t *testing.T) {
	trail := func(cfgTweak func(*Config)) []Event {
		sim := clock.NewSim(t0)
		store := metrics.NewStore(0)
		scope := metrics.Scope{Service: "catalog", Version: "v2"}
		for ts := time.Duration(0); ts <= 2*time.Minute; ts += time.Second {
			store.Record("response_time", scope, t0.Add(ts), 50)
		}
		cfg := Config{Clock: sim, Table: router.NewTable(), Store: store}
		cfgTweak(&cfg)
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := eng.Launch(multiCheckStrategy("", "catalog", 3, 5*time.Second, time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case <-run.Done():
				return run.Events()
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("run did not finish; status=%v", run.Status())
			}
			if d, ok := sim.NextDeadline(); ok {
				sim.AdvanceTo(d)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	serial := trail(func(c *Config) { c.EvalWorkers = 1; c.DisableEvalCache = true })
	wide := trail(func(c *Config) { c.EvalWorkers = 16 })

	if len(serial) != len(wide) {
		t.Fatalf("trail lengths differ: serial=%d wide=%d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("event %d differs:\nserial: %+v\nwide:   %+v", i, serial[i], wide[i])
		}
	}
}

// TestEvalPlaneStats sanity-checks the dispatcher's health-surface
// counters.
func TestEvalPlaneStats(t *testing.T) {
	eng, err := NewEngine(Config{
		Table: router.NewTable(), Store: metrics.NewStore(0), EvalWorkers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.EvalPlane()
	if st.Workers != 3 {
		t.Errorf("Workers = %d; want 3", st.Workers)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.InlineEvals != 0 {
		t.Errorf("fresh engine counters non-zero: %+v", st)
	}

	serial, err := NewEngine(Config{
		Table: router.NewTable(), Store: metrics.NewStore(0),
		EvalWorkers: 1, DisableEvalCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.EvalPlane().Workers; got != 1 {
		t.Errorf("serial Workers = %d; want 1", got)
	}
}
