package bifrost

import (
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

// This file injects failures mid-run: metrics that degrade halfway
// through a gradual rollout, and telemetry outages during later phases.

// TestRollbackMidRollout degrades the candidate after the second
// rollout step; the engine must abandon the remaining steps and reroute
// to the baseline.
func TestRollbackMidRollout(t *testing.T) {
	h := newHarness(t)
	s := &Strategy{
		Name: "rollout", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "rollout", Practice: expmodel.PracticeGradualRollout,
			Traffic: TrafficSpec{
				Steps:        []float64{0.25, 0.5, 0.75, 1.0},
				StepDuration: time.Minute,
			},
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
				Interval: 10 * time.Second, Window: 15 * time.Second,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
	// Healthy for the first ~90 virtual seconds (covering step 1 and
	// half of step 2), then a hard regression.
	scope := metrics.Scope{Service: "catalog", Version: "v2"}
	for ts := time.Duration(0); ts <= 10*time.Minute; ts += time.Second {
		v := 50.0
		if ts > 90*time.Second {
			v = 400
		}
		h.store.Record("response_time", scope, t0.Add(ts), v)
	}
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusRolledBack {
		t.Fatalf("status = %v", run.Status())
	}
	// The rollout must not have reached the later steps.
	var steps []string
	for _, ev := range run.Events() {
		if ev.Type == EventRolloutStep {
			steps = append(steps, ev.Detail)
		}
	}
	if len(steps) > 2 {
		t.Errorf("rollout continued after degradation: %v", steps)
	}
	route, _ := h.table.Route("catalog")
	if route.Backends[0].Version != "v1" || route.Backends[0].Weight != 1 {
		t.Errorf("rollback route = %+v", route.Backends)
	}
}

// TestTelemetryOutageMidPhase stops feeding metrics partway through the
// phase: the final conclusion must be inconclusive (not success), since
// the closing evaluation sees an empty window.
func TestTelemetryOutageMidPhase(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].Checks[0].Window = 15 * time.Second
	s.Phases[0].OnInconclusive = Transition{Kind: TransitionAbort}
	// Data only for the first 20 virtual seconds of a 60-second phase.
	scope := metrics.Scope{Service: "catalog", Version: "v2"}
	for ts := time.Duration(0); ts <= 20*time.Second; ts += time.Second {
		h.store.Record("response_time", scope, t0.Add(ts), 50)
	}
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted via inconclusive (telemetry outage)", run.Status())
	}
}

// TestRecoveryAfterTransientFailure: a short failure burst below the
// FailuresToTrip threshold must not kill the run.
func TestRecoveryAfterTransientFailure(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].OnSuccess = Transition{Kind: TransitionPromote}
	s.Phases[0].Checks[0].FailuresToTrip = 4
	s.Phases[0].Checks[0].Window = 10 * time.Second
	scope := metrics.Scope{Service: "catalog", Version: "v2"}
	for ts := time.Duration(0); ts <= 2*time.Minute; ts += time.Second {
		v := 50.0
		// One 20-second burst: at 10s checks, at most 2-3 consecutive
		// failing evaluations — below the trip threshold of 4.
		if ts >= 20*time.Second && ts < 40*time.Second {
			v = 500
		}
		h.store.Record("response_time", scope, t0.Add(ts), v)
	}
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded (transient burst below trip threshold)", run.Status())
	}
}
