package bifrost

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestBuildReportHappyPath(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)

	rep := run.BuildReport()
	if rep.Status != "succeeded" {
		t.Errorf("status = %q", rep.Status)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Outcome != "pass" {
			t.Errorf("phase %s outcome = %q", p.Phase, p.Outcome)
		}
		if p.Checks == 0 {
			t.Errorf("phase %s recorded no check evaluations", p.Phase)
		}
		if p.Duration <= 0 {
			t.Errorf("phase %s duration = %v", p.Phase, p.Duration)
		}
	}
	if rep.Duration <= 0 || rep.Finished.Before(rep.Started) {
		t.Errorf("timing wrong: %+v", rep)
	}
	if rep.CheckFailures != 0 || rep.Retries != 0 {
		t.Errorf("unexpected failures/retries: %+v", rep)
	}
}

func TestBuildReportWithRetriesAndFailures(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].MaxRetries = 2
	// No metrics: retries then rollback.
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	rep := run.BuildReport()
	if rep.Status != "rolled-back" {
		t.Errorf("status = %q", rep.Status)
	}
	if rep.Retries != 2 {
		t.Errorf("retries = %d, want 2", rep.Retries)
	}
	if len(rep.Phases) != 3 {
		t.Errorf("phase entries = %d, want 3 (initial + 2 retries)", len(rep.Phases))
	}
}

func TestReportRenderAndJSON(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 500) // failing
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	rep := run.BuildReport()
	out := rep.Render()
	for _, want := range []string{"experiment report", "rolled-back", "canary"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if rep.CheckFailures == 0 {
		t.Error("failing run should record check failures")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["strategy"] != "happy" {
		t.Errorf("JSON strategy = %v", decoded["strategy"])
	}
}
