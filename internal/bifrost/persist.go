package bifrost

import (
	"encoding/json"
	"fmt"
	"time"
)

// This file defines the wire form of run events: the JSON payload the
// engine appends to its write-ahead journal (internal/journal) before
// applying each event's side effects. The envelope is self-contained —
// run name, event fields, and (on run-launched / run-finished records)
// the strategy source and terminal status — so a journal alone suffices
// to rebuild every run (see recover.go).

// wireRecord is the journaled form of one run event.
type wireRecord struct {
	// Run names the run the event belongs to. The name is
	// tenant-qualified (tenancy.Qualify), so pre-tenancy journals — and
	// all default-tenant records — carry the bare strategy name.
	Run string `json:"run"`
	// Tenant is the canonical owning tenant; omitted for the default
	// tenant, which keeps default-tenant records byte-identical to
	// pre-tenancy ones.
	Tenant string `json:"tenant,omitempty"`
	// V is the record format version.
	V  int       `json:"v"`
	At time.Time `json:"at"`
	// Type is the event type; Phase, Check, Outcome, and Detail mirror
	// Event.
	Type    EventType `json:"type"`
	Phase   string    `json:"phase,omitempty"`
	Check   string    `json:"check,omitempty"`
	Outcome Outcome   `json:"outcome,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// Strategy carries the canonical DSL source on run-launched records,
	// making the journal self-contained: recovery reparses it instead of
	// needing a second store.
	Strategy string `json:"strategy,omitempty"`
	// Status carries the terminal state on run-finished records.
	Status RunStatus `json:"status,omitempty"`
}

// wireVersion is bumped when the record schema changes incompatibly.
const wireVersion = 1

// encodeEvent marshals one event into its journal record.
func encodeEvent(run, tenant string, ev Event, strategyDSL string, status RunStatus) ([]byte, error) {
	return json.Marshal(wireRecord{
		Run:      run,
		Tenant:   tenant,
		V:        wireVersion,
		At:       ev.At,
		Type:     ev.Type,
		Phase:    ev.Phase,
		Check:    ev.Check,
		Outcome:  ev.Outcome,
		Detail:   ev.Detail,
		Strategy: strategyDSL,
		Status:   status,
	})
}

// decodeRecord unmarshals one journal record.
func decodeRecord(rec []byte) (wireRecord, error) {
	var wr wireRecord
	if err := json.Unmarshal(rec, &wr); err != nil {
		return wireRecord{}, fmt.Errorf("bifrost: undecodable journal record: %w", err)
	}
	if wr.Run == "" || wr.Type == "" {
		return wireRecord{}, fmt.Errorf("bifrost: journal record without run or type")
	}
	if wr.V > wireVersion {
		return wireRecord{}, fmt.Errorf("bifrost: journal record version %d newer than supported %d", wr.V, wireVersion)
	}
	return wr, nil
}

// event converts the wire form back to the in-memory form.
func (wr wireRecord) event() Event {
	return Event{
		At:      wr.At,
		Type:    wr.Type,
		Phase:   wr.Phase,
		Check:   wr.Check,
		Outcome: wr.Outcome,
		Detail:  wr.Detail,
	}
}
