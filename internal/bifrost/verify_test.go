package bifrost

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

func namedStrategy(name, service string, groups ...expmodel.UserGroup) *Strategy {
	return &Strategy{
		Name: name, Service: service, Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic:  TrafficSpec{CandidateWeight: 0.1, Groups: groups},
			Duration: time.Minute,
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
				Interval: 10 * time.Second,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
}

func TestVerifyNoConflicts(t *testing.T) {
	conflicts, err := Verify([]*Strategy{
		namedStrategy("a", "svc-a"),
		namedStrategy("b", "svc-b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("independent strategies flagged: %v", conflicts)
	}
}

func TestVerifySameService(t *testing.T) {
	conflicts, err := Verify([]*Strategy{
		namedStrategy("a", "catalog"),
		namedStrategy("b", "catalog"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 {
		t.Fatal("same-service conflict not detected")
	}
	if conflicts[0].Kind != ConflictSameService {
		t.Errorf("kind = %v", conflicts[0].Kind)
	}
	if !strings.Contains(conflicts[0].String(), "catalog") {
		t.Errorf("conflict string = %q", conflicts[0])
	}
}

func TestVerifyVersionClash(t *testing.T) {
	a := namedStrategy("a", "catalog")
	b := namedStrategy("b", "catalog")
	b.Baseline, b.Candidate = "v2", "v3" // b's baseline is a's candidate
	conflicts, err := Verify([]*Strategy{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, c := range conflicts {
		if c.Kind == ConflictVersionClash {
			found = true
		}
	}
	if !found {
		t.Errorf("version clash not detected: %v", conflicts)
	}
}

func TestVerifySharedGroups(t *testing.T) {
	conflicts, err := Verify([]*Strategy{
		namedStrategy("a", "svc-a", "beta", "eu"),
		namedStrategy("b", "svc-b", "beta"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 || conflicts[0].Kind != ConflictSharedGroups {
		t.Fatalf("conflicts = %v", conflicts)
	}
	if !strings.Contains(conflicts[0].Detail, "beta") {
		t.Errorf("detail = %q", conflicts[0].Detail)
	}
}

func TestVerifyInvalidStrategy(t *testing.T) {
	if _, err := Verify([]*Strategy{{}}); err == nil {
		t.Error("invalid strategy should fail verification")
	}
}

func TestConflictKindString(t *testing.T) {
	for _, k := range []ConflictKind{ConflictSameService, ConflictSharedGroups, ConflictVersionClash} {
		if k.String() == "" {
			t.Error("empty conflict kind name")
		}
	}
	if ConflictKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestLaunchVerified(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	h.seedMetrics("response_time", "cart", "v2", "", 10*time.Minute, 50)

	a := namedStrategy("a", "catalog")
	runA, conflicts, err := h.engine.LaunchVerified(a)
	if err != nil || len(conflicts) != 0 {
		t.Fatalf("first launch: %v %v", conflicts, err)
	}

	// Conflicting launch on the same service is refused.
	b := namedStrategy("b", "catalog")
	if _, conflicts, err := h.engine.LaunchVerified(b); err == nil || len(conflicts) == 0 {
		t.Fatalf("conflicting launch accepted: %v %v", conflicts, err)
	}

	// Independent launch is accepted.
	c := namedStrategy("c", "cart")
	runC, conflicts, err := h.engine.LaunchVerified(c)
	if err != nil || len(conflicts) != 0 {
		t.Fatalf("independent launch refused: %v %v", conflicts, err)
	}
	h.drive(t, runA)
	h.drive(t, runC)

	// Once a is finished, b may launch.
	if _, conflicts, err := h.engine.LaunchVerified(b); err != nil || len(conflicts) != 0 {
		t.Fatalf("post-completion launch refused: %v %v", conflicts, err)
	}
}

func TestLaunchVerifiedInvalid(t *testing.T) {
	h := newHarness(t)
	if _, _, err := h.engine.LaunchVerified(&Strategy{}); err == nil {
		t.Error("invalid strategy should fail")
	}
}
