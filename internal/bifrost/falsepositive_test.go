package bifrost

import (
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

// seedWindow records `value` once per second for (metric, service,
// version) over [from, to) relative to t0 — the time-shaped counterpart
// of seedMetrics, for tests that inject mid-run shifts.
func (h *harness) seedWindow(metric, service, version string, from, to time.Duration, value float64) {
	scope := metrics.Scope{Service: service, Version: version}
	for ts := from; ts < to; ts += time.Second {
		h.store.Record(metric, scope, t0.Add(ts), value)
	}
}

// relativeCanaryStrategy gates a 30% canary on candidate-vs-baseline
// mean latency with a 2x budget: the scoping under test in the
// false-positive table.
func relativeCanaryStrategy() *Strategy {
	return &Strategy{
		Name: "fp-canary", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic:  TrafficSpec{CandidateWeight: 0.3},
			Duration: time.Minute,
			Checks: []Check{{
				Name: "relative-latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Scope: ScopeRelative,
				Upper: true, Threshold: 2.0,
				Window: 30 * time.Second, Interval: 10 * time.Second,
				FailuresToTrip: 2,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
}

// TestRelativeCheckFalsePositives is the false-positive/false-negative
// table for metric-gated runs: ambient trouble that hits baseline and
// candidate alike must NOT trip a relative check, while the same-shaped
// fault confined to the candidate MUST. Each case seeds a latency
// timeline per variant and asserts the graded outcome.
func TestRelativeCheckFalsePositives(t *testing.T) {
	const run = 2 * time.Minute
	cases := []struct {
		name string
		seed func(h *harness)
		want RunStatus
	}{
		{
			// A 5x latency surge hits both variants for 30s (a flash
			// crowd, an overloaded dependency): relative scoping cancels
			// it out, the run promotes.
			name: "ambient surge spares the canary",
			seed: func(h *harness) {
				for _, v := range []string{"v1", "v2"} {
					h.seedWindow("response_time", "catalog", v, 0, 20*time.Second, 50)
					h.seedWindow("response_time", "catalog", v, 20*time.Second, 50*time.Second, 250)
					h.seedWindow("response_time", "catalog", v, 50*time.Second, run, 50)
				}
			},
			want: StatusSucceeded,
		},
		{
			// The same surge confined to the candidate is a real
			// regression: the check must trip while the fault is live.
			name: "candidate-only surge rolls back",
			seed: func(h *harness) {
				h.seedWindow("response_time", "catalog", "v1", 0, run, 50)
				h.seedWindow("response_time", "catalog", "v2", 0, 20*time.Second, 50)
				h.seedWindow("response_time", "catalog", "v2", 20*time.Second, 50*time.Second, 250)
				h.seedWindow("response_time", "catalog", "v2", 50*time.Second, run, 50)
			},
			want: StatusRolledBack,
		},
		{
			// A mild candidate slowdown inside the declared 2x budget is
			// not a regression.
			name: "candidate slowdown within budget promotes",
			seed: func(h *harness) {
				h.seedWindow("response_time", "catalog", "v1", 0, run, 50)
				h.seedWindow("response_time", "catalog", "v2", 0, run, 75)
			},
			want: StatusSucceeded,
		},
		{
			// A total ambient outage (10x latency on everything for the
			// whole phase) still is not the canary's fault.
			name: "sustained ambient degradation promotes",
			seed: func(h *harness) {
				for _, v := range []string{"v1", "v2"} {
					h.seedWindow("response_time", "catalog", v, 0, run, 500)
				}
			},
			want: StatusSucceeded,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t)
			tc.seed(h)
			r, err := h.engine.Launch(relativeCanaryStrategy())
			if err != nil {
				t.Fatal(err)
			}
			h.drive(t, r)
			if r.Status() != tc.want {
				t.Fatalf("status = %v, want %v; events: %+v", r.Status(), tc.want, r.Events())
			}
			if tc.want == StatusRolledBack {
				// The trip must happen while the fault is live, not at
				// the phase boundary.
				var finished time.Time
				for _, ev := range r.Events() {
					if ev.Type == EventRunFinished {
						finished = ev.At
					}
				}
				if faultEnd := t0.Add(55 * time.Second); finished.After(faultEnd) {
					t.Errorf("rollback landed at %v, after the fault window ended (%v)", finished, faultEnd)
				}
			}
		})
	}
}
