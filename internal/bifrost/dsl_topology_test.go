package bifrost

import (
	"strings"
	"testing"
)

// topoDSL wraps one check body in a minimal valid strategy.
func topoDSL(check string) string {
	return `
strategy "topo" {
    service   = "rec"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 10%
        duration = 1m
        ` + check + `
        on failure -> rollback
    }
}
`
}

func TestParseTopologyCheck(t *testing.T) {
	s, err := ParseStrategy(topoDSL(`
        check "structure" {
            kind       = topology
            heuristic  = "hybrid-0.5"
            max-ranked-changes = 2
            min-traces = 25
            allow      = updated-callee-version, updated-caller-version
            interval   = 30s
            failures   = 2
        }`))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Phases[0].Checks[0]
	if c.Kind != CheckTopology {
		t.Fatalf("kind = %v", c.Kind)
	}
	if c.Heuristic != "hybrid-0.5" || c.MaxChanges != 2 || c.MinTraces != 25 {
		t.Errorf("attrs = %+v", c)
	}
	if len(c.Allow) != 2 || c.Allow[0] != "updated-callee-version" || c.Allow[1] != "updated-caller-version" {
		t.Errorf("allow = %v", c.Allow)
	}
	if c.FailuresToTrip != 2 {
		t.Errorf("failures = %d", c.FailuresToTrip)
	}
}

// TestParseTopologyCheckOrderIndependent moves `kind` to the end: the
// attribute-consistency check must not depend on declaration order.
func TestParseTopologyCheckOrderIndependent(t *testing.T) {
	_, err := ParseStrategy(topoDSL(`
        check "structure" {
            heuristic = "subtree-size"
            allow     = remove-call
            kind      = topology
        }`))
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseTopologyCheckErrors(t *testing.T) {
	cases := []struct {
		name  string
		check string
		want  string
	}{
		{
			name: "unknown heuristic",
			check: `check "s" {
                kind      = topology
                heuristic = "nonsense"
            }`,
			want: "unknown heuristic",
		},
		{
			name: "unknown change class in allow",
			check: `check "s" {
                kind  = topology
                allow = made-up-class
            }`,
			want: "unknown change class",
		},
		{
			name: "bad scope value",
			check: `check "s" {
                kind  = topology
                scope = sideways
            }`,
			want: "unknown check scope",
		},
		{
			name: "scope not valid on topology checks",
			check: `check "s" {
                kind  = topology
                scope = relative
            }`,
			want: `"scope" is not valid on topology check`,
		},
		{
			name: "metric not valid on topology checks",
			check: `check "s" {
                kind   = topology
                metric = response_time
            }`,
			want: `"metric" is not valid on topology check`,
		},
		{
			name: "threshold not valid on topology checks",
			check: `check "s" {
                kind = topology
                max  = 250
            }`,
			want: `"max" is not valid on topology check`,
		},
		{
			name: "window not valid on topology checks",
			check: `check "s" {
                kind   = topology
                window = 30s
            }`,
			want: `"window" is not valid on topology check`,
		},
		{
			name: "duplicate heuristic",
			check: `check "s" {
                kind      = topology
                heuristic = "subtree-size"
                heuristic = "subtree-weighted"
            }`,
			want: `duplicate attribute "heuristic"`,
		},
		{
			name: "duplicate kind",
			check: `check "s" {
                kind = topology
                kind = topology
            }`,
			want: `duplicate attribute "kind"`,
		},
		{
			name: "duplicate allow",
			check: `check "s" {
                kind  = topology
                allow = remove-call
                allow = remove-call
            }`,
			want: `duplicate attribute "allow"`,
		},
		{
			name: "duplicate max-ranked-changes",
			check: `check "s" {
                kind = topology
                max-ranked-changes = 1
                max-ranked-changes = 2
            }`,
			want: `duplicate attribute "max-ranked-changes"`,
		},
		{
			name: "negative max-ranked-changes rejected by lexer or parser",
			check: `check "s" {
                kind = topology
                max-ranked-changes = 1.5
            }`,
			want: "bad integer",
		},
		{
			name: "unknown kind",
			check: `check "s" {
                kind = vibes
            }`,
			want: "unknown check kind",
		},
		{
			name: "topology attrs on metric check",
			check: `check "s" {
                metric    = response_time
                aggregate = p95
                max       = 250
                heuristic = "subtree-size"
            }`,
			want: `requires kind = topology`,
		},
		{
			name: "allow on metric check",
			check: `check "s" {
                metric    = response_time
                aggregate = p95
                max       = 250
                allow     = remove-call
            }`,
			want: `requires kind = topology`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseStrategy(topoDSL(tc.check))
			if err == nil {
				t.Fatalf("parse accepted:\n%s", tc.check)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTopologyCheckRoundTrip verifies WriteDSL/ParseStrategy is a fixed
// point for topology checks (the property expctl fmt relies on).
func TestTopologyCheckRoundTrip(t *testing.T) {
	variants := []string{
		`check "full" {
            kind       = topology
            heuristic  = "hybrid-0.7"
            max-ranked-changes = 3
            min-traces = 40
            allow      = updated-version, remove-call
            interval   = 20s
            failures   = 2
        }`,
		`check "minimal" {
            kind = topology
        }`,
		`check "default-heuristic" {
            kind       = topology
            min-traces = 5
        }`,
	}
	for _, v := range variants {
		s, err := ParseStrategy(topoDSL(v))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		canonical := WriteDSL(s)
		s2, err := ParseStrategy(canonical)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, canonical)
		}
		if again := WriteDSL(s2); again != canonical {
			t.Fatalf("not a fixed point:\nfirst:\n%s\nsecond:\n%s", canonical, again)
		}
		c1, c2 := s.Phases[0].Checks[0], s2.Phases[0].Checks[0]
		if c1.Kind != c2.Kind || c1.Heuristic != c2.Heuristic ||
			c1.MaxChanges != c2.MaxChanges || c1.MinTraces != c2.MinTraces ||
			len(c1.Allow) != len(c2.Allow) {
			t.Fatalf("round trip changed the check: %+v -> %+v", c1, c2)
		}
	}
}

func TestTopologyCheckStateMachineRendering(t *testing.T) {
	s, err := ParseStrategy(topoDSL(`
        check "structure" {
            kind     = topology
            allow    = updated-callee-version
            interval = 30s
        }`))
	if err != nil {
		t.Fatal(err)
	}
	sm := s.StateMachine()
	if !strings.Contains(sm, "topology(subtree-weighted)") ||
		!strings.Contains(sm, "allow updated-callee-version") {
		t.Errorf("state machine missing topology check:\n%s", sm)
	}
}

func TestValidateProgrammaticTopologyCheck(t *testing.T) {
	base := func() *Strategy {
		s, err := ParseStrategy(topoDSL(`check "s" { kind = topology }`))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := base()
	s.Phases[0].Checks[0].Heuristic = "bogus"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown heuristic") {
		t.Errorf("unknown heuristic not rejected: %v", err)
	}
	s = base()
	s.Phases[0].Checks[0].Allow = []string{"bogus"}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown change class") {
		t.Errorf("unknown change class not rejected: %v", err)
	}
	s = base()
	s.Phases[0].Checks[0].Metric = "response_time"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "no metric") {
		t.Errorf("metric on topology check not rejected: %v", err)
	}
	s = base()
	s.Phases[0].Checks[0].MaxChanges = -1
	if err := s.Validate(); err == nil {
		t.Error("negative max-ranked-changes not rejected")
	}
}
