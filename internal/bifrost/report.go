package bifrost

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// This file turns a run's audit trail into the artifacts teams share
// after an experiment: a human-readable report and a JSON export —
// part of the experimentation-as-code story: the strategy, its
// execution, and its outcome are all plain, versionable text.

// Report summarizes a finished (or running) strategy run.
type Report struct {
	Strategy  string        `json:"strategy"`
	Service   string        `json:"service"`
	Baseline  string        `json:"baseline"`
	Candidate string        `json:"candidate"`
	Status    string        `json:"status"`
	Started   time.Time     `json:"started"`
	Finished  time.Time     `json:"finished,omitempty"`
	Duration  time.Duration `json:"durationNs,omitempty"`
	Phases    []PhaseReport `json:"phases"`
	// CheckFailures counts failing check evaluations across the run.
	CheckFailures int `json:"checkFailures"`
	// Retries counts phase re-executions.
	Retries int `json:"retries"`
}

// PhaseReport is one phase's execution summary.
type PhaseReport struct {
	Phase    string        `json:"phase"`
	Entered  time.Time     `json:"entered"`
	Outcome  string        `json:"outcome,omitempty"`
	Duration time.Duration `json:"durationNs,omitempty"`
	Checks   int           `json:"checkEvaluations"`
	Failures int           `json:"checkFailures"`
}

// BuildReport assembles a Report from a run's events.
func (r *Run) BuildReport() Report {
	events := r.Events()
	s := r.Strategy()
	rep := Report{
		Strategy:  s.Name,
		Service:   s.Service,
		Baseline:  s.Baseline,
		Candidate: s.Candidate,
		Status:    r.Status().String(),
	}
	if len(events) > 0 {
		rep.Started = events[0].At
	}
	var cur *PhaseReport
	entered := make(map[string]int)
	for _, ev := range events {
		switch ev.Type {
		case EventPhaseEntered:
			entered[ev.Phase]++
			if entered[ev.Phase] > 1 {
				rep.Retries++
			}
			rep.Phases = append(rep.Phases, PhaseReport{Phase: ev.Phase, Entered: ev.At})
			cur = &rep.Phases[len(rep.Phases)-1]
		case EventCheckResult:
			if cur != nil {
				cur.Checks++
				if ev.Outcome == OutcomeFail {
					cur.Failures++
					rep.CheckFailures++
				}
			}
		case EventPhaseOutcome:
			if cur != nil {
				cur.Outcome = ev.Outcome.String()
				cur.Duration = ev.At.Sub(cur.Entered)
			}
		case EventRunFinished:
			rep.Finished = ev.At
			rep.Duration = ev.At.Sub(rep.Started)
		}
	}
	return rep
}

// Render formats the report for humans.
func (rep Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment report: %s (%s: %s -> %s)\n",
		rep.Strategy, rep.Service, rep.Baseline, rep.Candidate)
	fmt.Fprintf(&b, "status: %s", rep.Status)
	if rep.Duration > 0 {
		fmt.Fprintf(&b, " after %s", rep.Duration)
	}
	if rep.Retries > 0 {
		fmt.Fprintf(&b, " (%d phase retries)", rep.Retries)
	}
	b.WriteString("\n")
	for _, p := range rep.Phases {
		fmt.Fprintf(&b, "  %-12s %-13s checks=%d failures=%d",
			p.Phase, p.Outcome, p.Checks, p.Failures)
		if p.Duration > 0 {
			fmt.Fprintf(&b, " duration=%s", p.Duration)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// JSON marshals the report (indented, stable field order).
func (rep Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
