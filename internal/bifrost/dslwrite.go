package bifrost

import (
	"fmt"
	"strings"
	"time"
)

// WriteDSL renders a strategy back into its DSL form. Parse(WriteDSL(s))
// yields a strategy equivalent to s (verified by a round-trip property
// test), which is what makes experimentation-as-code reviewable: the
// engine can always show the canonical source of what it is executing.
func WriteDSL(s *Strategy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy %q {\n", s.Name)
	fmt.Fprintf(&b, "    service   = %q\n", s.Service)
	fmt.Fprintf(&b, "    baseline  = %q\n", s.Baseline)
	fmt.Fprintf(&b, "    candidate = %q\n", s.Candidate)
	for i := range s.Phases {
		b.WriteString("\n")
		writePhase(&b, &s.Phases[i])
	}
	b.WriteString("}\n")
	return b.String()
}

func writePhase(b *strings.Builder, p *Phase) {
	fmt.Fprintf(b, "    phase %q {\n", p.Name)
	fmt.Fprintf(b, "        practice = %s\n", p.Practice)
	t := &p.Traffic
	if len(t.Steps) > 0 {
		steps := make([]string, len(t.Steps))
		for i, w := range t.Steps {
			steps[i] = percent(w)
		}
		fmt.Fprintf(b, "        steps = %s\n", strings.Join(steps, ", "))
		fmt.Fprintf(b, "        step-duration = %s\n", duration(t.StepDuration))
	} else if !t.Mirror && t.CandidateWeight > 0 {
		fmt.Fprintf(b, "        traffic = %s\n", percent(t.CandidateWeight))
	}
	if len(t.Groups) > 0 {
		names := make([]string, len(t.Groups))
		for i, g := range t.Groups {
			names[i] = string(g)
		}
		fmt.Fprintf(b, "        groups = %s\n", strings.Join(names, ", "))
	}
	if p.Duration > 0 && len(t.Steps) == 0 {
		fmt.Fprintf(b, "        duration = %s\n", duration(p.Duration))
	}
	if p.MinSamples > 0 {
		fmt.Fprintf(b, "        min-samples = %d\n", p.MinSamples)
	}
	if p.MaxRetries > 0 {
		fmt.Fprintf(b, "        max-retries = %d\n", p.MaxRetries)
	}
	for i := range p.Checks {
		writeCheck(b, &p.Checks[i])
	}
	writeChain(b, "success", p.OnSuccess)
	writeChain(b, "failure", p.OnFailure)
	writeChain(b, "inconclusive", p.OnInconclusive)
	b.WriteString("    }\n")
}

func writeCheck(b *strings.Builder, c *Check) {
	fmt.Fprintf(b, "        check %q {\n", c.Name)
	if c.Kind == CheckTopology {
		b.WriteString("            kind      = topology\n")
		if c.Heuristic != "" {
			// Quoted: heuristic names like "hybrid-0.5" do not lex as one
			// identifier.
			fmt.Fprintf(b, "            heuristic = %q\n", c.Heuristic)
		}
		if c.MaxChanges > 0 {
			fmt.Fprintf(b, "            max-ranked-changes = %d\n", c.MaxChanges)
		}
		if c.MinTraces > 0 {
			fmt.Fprintf(b, "            min-traces = %d\n", c.MinTraces)
		}
		if len(c.Allow) > 0 {
			fmt.Fprintf(b, "            allow     = %s\n", strings.Join(c.Allow, ", "))
		}
	} else {
		fmt.Fprintf(b, "            metric    = %s\n", c.Metric)
		fmt.Fprintf(b, "            aggregate = %s\n", c.Aggregation)
		switch c.Scope {
		case ScopeBaseline:
			b.WriteString("            scope     = baseline\n")
		case ScopeRelative:
			b.WriteString("            scope     = relative\n")
		}
		bound := "min"
		if c.Upper {
			bound = "max"
		}
		fmt.Fprintf(b, "            %s       = %g\n", bound, c.Threshold)
		if c.Window > 0 {
			fmt.Fprintf(b, "            window    = %s\n", duration(c.Window))
		}
	}
	if c.Interval > 0 {
		fmt.Fprintf(b, "            interval  = %s\n", duration(c.Interval))
	}
	if c.FailuresToTrip > 0 {
		fmt.Fprintf(b, "            failures  = %d\n", c.FailuresToTrip)
	}
	b.WriteString("        }\n")
}

func writeChain(b *strings.Builder, outcome string, tr Transition) {
	if tr.Kind == 0 {
		return // default transition; omitted for brevity
	}
	var action string
	switch tr.Kind {
	case TransitionGoto:
		action = fmt.Sprintf("phase %q", tr.Target)
	default:
		action = tr.Kind.String()
	}
	fmt.Fprintf(b, "        on %s -> %s\n", outcome, action)
}

// percent renders a fraction as a DSL percentage where exact, falling
// back to the fractional form.
func percent(w float64) string {
	p := w * 100
	if p == float64(int(p)) {
		return fmt.Sprintf("%d%%", int(p))
	}
	return fmt.Sprintf("%g", w)
}

// duration renders a time.Duration in the DSL's compact form.
func duration(d time.Duration) string {
	return d.String()
}
