package bifrost

import (
	"strings"
	"testing"
)

// FuzzParseStrategy feeds arbitrary source through the DSL parser: it
// must never panic, and anything it accepts must round-trip — the
// canonical form (WriteDSL) reparses to the same canonical form, the
// property expctl fmt relies on.
func FuzzParseStrategy(f *testing.F) {
	f.Add(`
strategy "recommendation-rollout" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"

    phase "canary" {
        practice    = canary
        traffic     = 5%
        duration    = 10m
        min-samples = 200
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
            interval  = 10s
        }
        check "regression" {
            metric    = response_time
            aggregate = mean
            scope     = relative
            max       = 1.25
            interval  = 15s
        }
        on success      -> phase "rollout"
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 2
    }

    phase "rollout" {
        practice      = gradual-rollout
        steps         = 25%, 50%, 75%, 100%
        step-duration = 5m
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
        }
        on success -> promote
        on failure -> rollback
    }
}
`)
	f.Add(`
strategy "dark" {
    service   = "svc"
    baseline  = "v1"
    candidate = "v2"
    phase "mirror" {
        practice = dark-launch
        mirror   = true
        duration = 1h
        groups   = beta, power
    }
}
`)
	f.Add(`strategy "x" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s } }`)
	f.Add(`
strategy "topo" {
    service   = "rec"
    baseline  = "v1"
    candidate = "v2"
    phase "canary" {
        practice = canary
        traffic  = 10%
        duration = 10m
        check "structure" {
            kind       = topology
            heuristic  = "hybrid-0.5"
            max-ranked-changes = 2
            min-traces = 25
            allow      = updated-callee-version, updated-caller-version, updated-version
            interval   = 30s
            failures   = 2
        }
        on failure -> rollback
    }
}
`)
	f.Add(`strategy "t" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s
check "c" { kind = topology } } }`)
	f.Add(`strategy "t" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s
check "c" { kind = topology heuristic = "nope" } } }`)
	f.Add(`strategy "t" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s
check "c" { kind = topology scope = relative } } }`)
	f.Add(`strategy "t" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s
check "c" { kind = topology allow = remove-call allow = remove-call } } }`)
	f.Add(`strategy "t" { service = "s" baseline = "a" candidate = "b"
phase "p" { practice = canary traffic = 10% duration = 1s
check "c" { heuristic = "subtree-size" metric = m aggregate = mean max = 1 } } }`)
	f.Add(`strategy "x" {`)
	f.Add(`# comment only`)
	f.Add(`strategy "" {}`)
	f.Add("strategy \"x\" {\x00}")

	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseStrategy(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canonical := WriteDSL(s)
		s2, err := ParseStrategy(canonical)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput:\n%s\ncanonical:\n%s",
				err, src, canonical)
		}
		if again := WriteDSL(s2); again != canonical {
			t.Fatalf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				canonical, again)
		}
		if s2.Name != s.Name || s2.Service != s.Service || len(s2.Phases) != len(s.Phases) {
			t.Fatalf("round trip changed identity: %q/%q/%d -> %q/%q/%d",
				s.Name, s.Service, len(s.Phases), s2.Name, s2.Service, len(s2.Phases))
		}
		// The state machine rendering must not panic either.
		if sm := s.StateMachine(); !strings.Contains(sm, s.Name) {
			t.Fatalf("state machine rendering lost the strategy name:\n%s", sm)
		}
	})
}
