package bifrost

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
	"contexp/internal/stats"
)

// This file is the Chapter 4 evaluation harness.
//
// Section 4.5.1 (end-user overhead, Fig 4.6 / Table 4.1) measures real
// HTTP request latencies against backend services with and without the
// Bifrost routing layer while a four-phase strategy (canary → dark
// launch → A/B test → gradual rollout) executes — the same experiment
// design as the paper, with localhost standing in for the cloud testbed.
//
// Section 4.5.2 (engine performance, Figs 4.7–4.10) measures the
// engine's check-evaluation delay and busy time while scaling (a) the
// number of parallel strategies and (b) the number of checks per
// strategy. "CPU utilization" is reproduced as the engine's busy
// fraction: cumulative check-evaluation time over wall time.

// OverheadConfig parameterizes EvalFigure4_6.
type OverheadConfig struct {
	// Requests per measurement arm.
	Requests int
	// ServiceTimeMs is the mean simulated backend processing time.
	ServiceTimeMs float64
	// PhaseDuration is the length of each of the four strategy phases.
	PhaseDuration time.Duration
	// Seed for backend latency sampling.
	Seed int64
}

// DefaultOverheadConfig keeps the full figure under ~10 s of wall time.
func DefaultOverheadConfig() OverheadConfig {
	return OverheadConfig{
		Requests:      1500,
		ServiceTimeMs: 5,
		PhaseDuration: 2 * time.Second,
		Seed:          1,
	}
}

// Figure4_6 is the end-user overhead result.
type Figure4_6 struct {
	// Baseline are request latencies (ms) hitting the service directly.
	Baseline []float64
	// Bifrost are request latencies (ms) through the routing layer
	// while the four-phase strategy executes.
	Bifrost []float64
	// RunStatus is the strategy's final state (should be succeeded).
	RunStatus RunStatus
	// PhaseOutcomes lists the phase conclusions in order.
	PhaseOutcomes []string
}

// OverheadMs returns the mean added latency.
func (f *Figure4_6) OverheadMs() float64 {
	return stats.Mean(f.Bifrost) - stats.Mean(f.Baseline)
}

// Render formats Table 4.1 plus the moving-average series of Fig 4.6.
func (f *Figure4_6) Render() string {
	var b strings.Builder
	b.WriteString("Table 4.1 — response times in milliseconds\n")
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %6s %6s %6s\n", "arm", "mean", "sd", "min", "med", "p95", "max")
	for _, arm := range []struct {
		name string
		xs   []float64
	}{{"baseline", f.Baseline}, {"bifrost", f.Bifrost}} {
		s := stats.Summarize(arm.xs)
		fmt.Fprintf(&b, "%-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			arm.name, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
	}
	fmt.Fprintf(&b, "mean overhead: %.2f ms\n", f.OverheadMs())
	fmt.Fprintf(&b, "strategy: %s, phases: %s\n", f.RunStatus, strings.Join(f.PhaseOutcomes, ", "))
	b.WriteString("\nFigure 4.6 — 3-second moving average of response times (ms)\n")
	window := 50
	bl := stats.MovingAverage(f.Baseline, window)
	bf := stats.MovingAverage(f.Bifrost, window)
	fmt.Fprintf(&b, "baseline: %s\n", sparkline(bl, 100))
	fmt.Fprintf(&b, "bifrost:  %s\n", sparkline(bf, 100))
	return b.String()
}

// EvalFigure4_6 runs the overhead measurement.
func EvalFigure4_6(cfg OverheadConfig) (*Figure4_6, error) {
	store := metrics.NewStore(0)
	var rngMu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.Seed))
	dist := stats.LogNormalFromMeanP95(cfg.ServiceTimeMs, cfg.ServiceTimeMs*2.5)
	sample := func() float64 {
		rngMu.Lock()
		defer rngMu.Unlock()
		return dist.Sample(rng)
	}

	// Backend handler: sleeps a sampled service time and self-reports
	// telemetry, like an instrumented microservice would.
	mkBackend := func(version string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ms := sample()
			time.Sleep(time.Duration(ms * float64(time.Millisecond)))
			variant := ""
			if r.Header.Get("X-Dark-Launch") == "true" {
				variant = "dark"
			}
			scope := metrics.Scope{Service: "catalog", Version: version, Variant: variant}
			now := time.Now()
			store.Record("response_time", scope, now, ms)
			store.Record("requests", scope, now, 1)
			w.Header().Set("X-Version", version)
			fmt.Fprint(w, "ok")
		}))
	}
	v1 := mkBackend("v1")
	defer v1.Close()
	v2 := mkBackend("v2")
	defer v2.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	measure := func(url string, n int) ([]float64, error) {
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			req, err := http.NewRequest(http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			req.Header.Set("X-User-ID", fmt.Sprintf("user-%d", i%500))
			start := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				return nil, err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out = append(out, float64(time.Since(start))/float64(time.Millisecond))
		}
		return out, nil
	}

	// Arm 1: direct access to the stable version.
	baseline, err := measure(v1.URL, cfg.Requests)
	if err != nil {
		return nil, fmt.Errorf("bifrost: baseline arm: %w", err)
	}

	// Arm 2: through the Bifrost routing layer with the strategy live.
	table := router.NewTable()
	proxy := router.NewProxy("catalog", table)
	defer proxy.Close()
	if err := proxy.RegisterUpstream("v1", v1.URL); err != nil {
		return nil, err
	}
	if err := proxy.RegisterUpstream("v2", v2.URL); err != nil {
		return nil, err
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	engine, err := NewEngine(Config{Table: table, Store: store, DefaultCheckInterval: 200 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	strategy := fourPhaseStrategy(cfg.PhaseDuration)
	run, err := engine.Launch(strategy)
	if err != nil {
		return nil, err
	}

	bifrost, err := measure(front.URL, cfg.Requests)
	if err != nil {
		return nil, fmt.Errorf("bifrost: middleware arm: %w", err)
	}
	// Keep traffic flowing until the strategy finishes so its checks
	// always see fresh data.
	for {
		select {
		case <-run.Done():
			goto done
		default:
			if _, err := measure(front.URL, 25); err != nil {
				return nil, err
			}
		}
	}
done:
	fig := &Figure4_6{Baseline: baseline, Bifrost: bifrost, RunStatus: run.Status()}
	for _, ev := range run.Events() {
		if ev.Type == EventPhaseOutcome {
			fig.PhaseOutcomes = append(fig.PhaseOutcomes, ev.Phase+"="+ev.Outcome.String())
		}
	}
	return fig, nil
}

// fourPhaseStrategy is the evaluation strategy of Section 4.5.1: canary,
// dark launch, A/B test, gradual rollout. Thresholds are generous — the
// measurement is about overhead, not about tripping checks.
func fourPhaseStrategy(phaseDur time.Duration) *Strategy {
	interval := phaseDur / 8
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	latencyCheck := func(scope CheckScope, threshold float64) Check {
		return Check{
			Name: "latency", Metric: "response_time",
			Aggregation: metrics.AggMean, Scope: scope,
			Upper: true, Threshold: threshold,
			Interval: interval, Window: phaseDur,
		}
	}
	return &Strategy{
		Name: "four-phase", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{
			{
				Name: "canary", Practice: expmodel.PracticeCanary,
				Traffic: TrafficSpec{CandidateWeight: 0.05}, Duration: phaseDur,
				Checks: []Check{latencyCheck(ScopeCandidate, 1000)},
			},
			{
				Name: "dark", Practice: expmodel.PracticeDarkLaunch,
				Traffic: TrafficSpec{Mirror: true}, Duration: phaseDur,
				Checks: []Check{latencyCheck(ScopeCandidate, 1000)},
			},
			{
				Name: "ab", Practice: expmodel.PracticeABTest,
				Traffic: TrafficSpec{CandidateWeight: 0.5}, Duration: phaseDur,
				Checks: []Check{latencyCheck(ScopeRelative, 10)},
			},
			{
				Name: "rollout", Practice: expmodel.PracticeGradualRollout,
				Traffic: TrafficSpec{
					Steps:        []float64{0.5, 1.0},
					StepDuration: phaseDur / 2,
				},
				Checks:    []Check{latencyCheck(ScopeCandidate, 1000)},
				OnSuccess: Transition{Kind: TransitionPromote},
			},
		},
	}
}

// ScalingConfig parameterizes the engine-performance measurements.
type ScalingConfig struct {
	// Points are the x-axis values (strategy counts for Fig 4.7/4.8,
	// check counts for Fig 4.9/4.10).
	Points []int
	// RunDuration is each measurement's length.
	RunDuration time.Duration
	// CheckInterval is how often each check fires.
	CheckInterval time.Duration
	// ChecksPerStrategy for the parallel-strategy sweep (default 5).
	ChecksPerStrategy int
}

// DefaultParallelConfig reproduces Figs 4.7/4.8 in a few seconds.
func DefaultParallelConfig() ScalingConfig {
	return ScalingConfig{
		Points:            []int{1, 16, 32, 64, 128},
		RunDuration:       2 * time.Second,
		CheckInterval:     100 * time.Millisecond,
		ChecksPerStrategy: 5,
	}
}

// DefaultChecksConfig reproduces Figs 4.9/4.10.
func DefaultChecksConfig() ScalingConfig {
	return ScalingConfig{
		Points:        []int{10, 50, 100, 500, 1000},
		RunDuration:   2 * time.Second,
		CheckInterval: 100 * time.Millisecond,
	}
}

// ScalingPoint is one x-axis measurement.
type ScalingPoint struct {
	X           int
	Evaluations int64
	// BusyFraction = check-evaluation time / wall time (Fig 4.7/4.9).
	BusyFraction float64
	// Delay is the box plot of check-evaluation delays (Fig 4.8/4.10).
	Delay stats.BoxPlot
	// MeanDelayMs is the mean delay in milliseconds.
	MeanDelayMs float64
}

// ScalingResult is a full sweep.
type ScalingResult struct {
	Title  string
	XLabel string
	Points []ScalingPoint
}

// Render formats the sweep as a table.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	fmt.Fprintf(&b, "%10s %8s %8s %10s %10s %10s %10s\n",
		r.XLabel, "evals", "busy%", "delay-mean", "delay-med", "delay-p75", "delay-max")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %8d %7.2f%% %9.3fms %9.3fms %9.3fms %9.3fms\n",
			p.X, p.Evaluations, p.BusyFraction*100, p.MeanDelayMs,
			float64(p.Delay.Median)/1e6, float64(p.Delay.Q3)/1e6, float64(p.Delay.Max)/1e6)
	}
	return b.String()
}

// EvalFigure4_7And4_8 sweeps the number of parallel strategies.
func EvalFigure4_7And4_8(cfg ScalingConfig) (*ScalingResult, error) {
	if cfg.ChecksPerStrategy <= 0 {
		cfg.ChecksPerStrategy = 5
	}
	res := &ScalingResult{
		Title:  "Figures 4.7 / 4.8 — engine load and check delay vs. parallel strategies",
		XLabel: "strategies",
	}
	for _, n := range cfg.Points {
		point, err := runScalingPoint(n, cfg.ChecksPerStrategy, cfg)
		if err != nil {
			return nil, err
		}
		point.X = n
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

// EvalFigure4_9And4_10 sweeps the number of checks on one strategy.
func EvalFigure4_9And4_10(cfg ScalingConfig) (*ScalingResult, error) {
	res := &ScalingResult{
		Title:  "Figures 4.9 / 4.10 — engine load and check delay vs. checks per strategy",
		XLabel: "checks",
	}
	for _, k := range cfg.Points {
		point, err := runScalingPoint(1, k, cfg)
		if err != nil {
			return nil, err
		}
		point.X = k
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

// runScalingPoint launches `strategies` single-phase strategies with
// `checks` checks each on the real clock and measures the engine.
func runScalingPoint(strategies, checks int, cfg ScalingConfig) (*ScalingPoint, error) {
	table := router.NewTable()
	store := metrics.NewStore(0)
	engine, err := NewEngine(Config{Table: table, Store: store, DefaultCheckInterval: cfg.CheckInterval})
	if err != nil {
		return nil, err
	}

	// Pre-seed healthy metrics covering the whole run, one batched
	// write per strategy.
	now := time.Now()
	for i := 0; i < strategies; i++ {
		scope := metrics.Scope{Service: svcName(i), Version: "v2"}
		var batch []metrics.Sample
		for ts := -cfg.RunDuration; ts <= 2*cfg.RunDuration; ts += cfg.CheckInterval / 2 {
			batch = append(batch, metrics.Sample{
				Metric: "response_time", Scope: scope, At: now.Add(ts), Value: 50,
			})
		}
		store.RecordBatch(batch)
	}

	runs := make([]*Run, 0, strategies)
	wallStart := time.Now()
	for i := 0; i < strategies; i++ {
		s := &Strategy{
			Name:    fmt.Sprintf("strat-%d", i),
			Service: svcName(i), Baseline: "v1", Candidate: "v2",
			Phases: []Phase{{
				Name: "canary", Practice: expmodel.PracticeCanary,
				Traffic:  TrafficSpec{CandidateWeight: 0.1},
				Duration: cfg.RunDuration,
				Checks:   makeChecks(checks, cfg.CheckInterval),
				// Conclude without routing churn at the end.
				OnSuccess:      Transition{Kind: TransitionPromote},
				OnInconclusive: Transition{Kind: TransitionAbort},
			}},
		}
		run, err := engine.Launch(s)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	for _, r := range runs {
		<-r.Done()
	}
	wall := time.Since(wallStart)

	m := engine.Metrics()
	delays := make([]float64, len(m.Delays))
	var meanDelay float64
	durs := make([]float64, len(m.Delays))
	for i, d := range m.Delays {
		delays[i] = float64(d)
		durs[i] = float64(d) / float64(time.Millisecond)
		meanDelay += durs[i]
	}
	if len(durs) > 0 {
		meanDelay /= float64(len(durs))
	}
	return &ScalingPoint{
		Evaluations:  m.Evaluations,
		BusyFraction: float64(m.BusyTime) / float64(wall),
		Delay:        boxPlotFromNs(delays),
		MeanDelayMs:  meanDelay,
	}, nil
}

func svcName(i int) string { return fmt.Sprintf("svc-%03d", i) }

func makeChecks(n int, interval time.Duration) []Check {
	out := make([]Check, n)
	for i := range out {
		out[i] = Check{
			Name: fmt.Sprintf("check-%03d", i), Metric: "response_time",
			Aggregation: metrics.AggMean, Upper: true, Threshold: 1000,
			Interval: interval, Window: 4 * interval,
		}
	}
	return out
}

func boxPlotFromNs(ns []float64) stats.BoxPlot {
	b := stats.NewBoxPlot(ns)
	return b
}

// sparkline renders a series as unicode blocks.
func sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	if width > len(xs) {
		width = len(xs)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	bucket := float64(len(xs)) / float64(width)
	var maxV float64
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		lo, hi := int(float64(i)*bucket), int(float64(i+1)*bucket)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		var sum float64
		for j := lo; j < hi; j++ {
			sum += xs[j]
		}
		vals[i] = sum / float64(hi-lo)
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
