package bifrost

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/metrics"
)

const sampleDSL = `
# The AB Inc recommendation rollout.
strategy "recommendation-rollout" {
    service   = "recommendation"
    baseline  = "v1"
    candidate = "v2"

    phase "canary" {
        practice    = canary
        traffic     = 5%
        duration    = 10m
        min-samples = 200
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
            window    = 30s
            interval  = 10s
            failures  = 3
        }
        check "regression" {
            metric    = response_time
            aggregate = mean
            scope     = relative
            max       = 1.25
            interval  = 15s
        }
        on success      -> phase "dark"
        on failure      -> rollback
        on inconclusive -> retry
        max-retries = 2
    }

    phase "dark" {
        practice = dark-launch
        duration = 5m
        check "errors" {
            metric    = errors
            aggregate = count
            max       = 10
            interval  = 30s
        }
        on success -> phase "ab"
    }

    phase "ab" {
        practice = ab-test
        traffic  = 50%
        duration = 1h
        check "conversion" {
            metric    = conversion
            aggregate = mean
            scope     = relative
            min       = 0.95
            interval  = 5m
        }
        on success -> phase "rollout"
        on failure -> rollback
    }

    phase "rollout" {
        practice      = gradual-rollout
        steps         = 25%, 50%, 75%, 100%
        step-duration = 5m
        check "latency" {
            metric    = response_time
            aggregate = p95
            max       = 250
        }
        on success -> promote
        on failure -> rollback
    }
}
`

func TestParseSampleDSL(t *testing.T) {
	s, err := ParseStrategy(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "recommendation-rollout" || s.Service != "recommendation" ||
		s.Baseline != "v1" || s.Candidate != "v2" {
		t.Fatalf("header = %+v", s)
	}
	if len(s.Phases) != 4 {
		t.Fatalf("phases = %d", len(s.Phases))
	}

	canary := s.Phases[0]
	if canary.Practice != expmodel.PracticeCanary {
		t.Errorf("practice = %v", canary.Practice)
	}
	if canary.Traffic.CandidateWeight != 0.05 {
		t.Errorf("traffic = %v", canary.Traffic.CandidateWeight)
	}
	if canary.Duration != 10*time.Minute {
		t.Errorf("duration = %v", canary.Duration)
	}
	if canary.MinSamples != 200 || canary.MaxRetries != 2 {
		t.Errorf("samples/retries = %d/%d", canary.MinSamples, canary.MaxRetries)
	}
	if len(canary.Checks) != 2 {
		t.Fatalf("canary checks = %d", len(canary.Checks))
	}
	lat := canary.Checks[0]
	if lat.Metric != "response_time" || lat.Aggregation != metrics.AggP95 ||
		!lat.Upper || lat.Threshold != 250 || lat.Window != 30*time.Second ||
		lat.Interval != 10*time.Second || lat.FailuresToTrip != 3 {
		t.Errorf("latency check = %+v", lat)
	}
	reg := canary.Checks[1]
	if reg.Scope != ScopeRelative || reg.Threshold != 1.25 {
		t.Errorf("regression check = %+v", reg)
	}
	if canary.OnSuccess.Kind != TransitionGoto || canary.OnSuccess.Target != "dark" {
		t.Errorf("canary success = %+v", canary.OnSuccess)
	}
	if canary.OnFailure.Kind != TransitionRollback {
		t.Errorf("canary failure = %+v", canary.OnFailure)
	}
	if canary.OnInconclusive.Kind != TransitionRetry {
		t.Errorf("canary inconclusive = %+v", canary.OnInconclusive)
	}

	dark := s.Phases[1]
	if dark.Practice != expmodel.PracticeDarkLaunch || !dark.Traffic.Mirror {
		t.Errorf("dark = %+v", dark)
	}

	ab := s.Phases[2]
	if ab.Checks[0].Upper {
		t.Error("min check should be a lower bound")
	}

	rollout := s.Phases[3]
	wantSteps := []float64{0.25, 0.5, 0.75, 1.0}
	if len(rollout.Traffic.Steps) != 4 {
		t.Fatalf("steps = %v", rollout.Traffic.Steps)
	}
	for i, w := range wantSteps {
		if rollout.Traffic.Steps[i] != w {
			t.Errorf("step %d = %v, want %v", i, rollout.Traffic.Steps[i], w)
		}
	}
	if rollout.Traffic.StepDuration != 5*time.Minute {
		t.Errorf("step duration = %v", rollout.Traffic.StepDuration)
	}
	if rollout.OnSuccess.Kind != TransitionPromote {
		t.Errorf("rollout success = %+v", rollout.OnSuccess)
	}
}

func TestParseGroups(t *testing.T) {
	src := `
strategy "beta" {
    service = "catalog"
    baseline = "v1"
    candidate = "v2"
    phase "beta-users" {
        practice = canary
        traffic  = 0%
        groups   = beta, staff
        duration = 5m
        on success -> promote
    }
}
`
	s, err := ParseStrategy(src)
	if err != nil {
		t.Fatal(err)
	}
	groups := s.Phases[0].Traffic.Groups
	if len(groups) != 2 || groups[0] != "beta" || groups[1] != "staff" {
		t.Errorf("groups = %v", groups)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"not a strategy", `phase "x" {}`, `expected "strategy"`},
		{"unterminated string", `strategy "x`, "unterminated"},
		{"missing brace", `strategy "x"`, "expected {"},
		{"unknown attribute", `strategy "x" { color = "red" }`, "unknown strategy attribute"},
		{"unknown phase attribute", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { wibble = 3 } }`, "unknown phase attribute"},
		{"bad practice", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = teleport } }`, "unknown practice"},
		{"bad duration", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary duration = 10 } }`, "bad duration"},
		{"traffic above 100%", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 150% } }`, "outside"},
		{"unknown action", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			on success -> explode } }`, "unknown action"},
		{"unknown outcome", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			on sadness -> rollback } }`, "unknown outcome"},
		{"unknown check attribute", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			check "c" { metric = rt aggregate = mean max = 1 sparkle = 2 } } }`, "unknown check attribute"},
		{"unknown scope", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			check "c" { metric = rt aggregate = mean max = 1 scope = sideways } } }`, "unknown check scope"},
		{"bad aggregation", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			check "c" { metric = rt aggregate = wat max = 1 } } }`, "unknown aggregation"},
		{"trailing garbage", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m on success -> promote } } extra`, "unexpected"},
		{"semantic: goto unknown", `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = 5% duration = 1m
			on success -> phase "ghost" } }`, "unknown phase"},
		{"bad character", `strategy "x" { service=@ }`, "unexpected character"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseStrategy(tt.src)
			if err == nil {
				t.Fatal("expected parse error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
strategy "x" { # trailing comment
    service = "s"  // another
    baseline = "a"
    candidate = "b"
    phase "p" {
        practice = canary
        traffic = 5%
        duration = 1m
        on success -> promote
    }
}
`
	if _, err := ParseStrategy(src); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestParsePercentForms(t *testing.T) {
	// "0.05" (fraction) and "5%" (percent) are equivalent.
	for _, traffic := range []string{"5%", "0.05"} {
		src := `strategy "x" { service="s" baseline="a" candidate="b"
			phase "p" { practice = canary traffic = ` + traffic + ` duration = 1m on success -> promote } }`
		s, err := ParseStrategy(src)
		if err != nil {
			t.Fatalf("%s: %v", traffic, err)
		}
		if got := s.Phases[0].Traffic.CandidateWeight; got != 0.05 {
			t.Errorf("traffic %s parsed as %v", traffic, got)
		}
	}
}
