package bifrost

import (
	"sync"
	"testing"
	"time"

	"contexp/internal/clock"
	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// stubQuerier is a canned telemetry backend: it proves the engine only
// needs the narrow Querier surface, not the concrete sharded store.
type stubQuerier struct {
	mu      sync.Mutex
	values  map[string]float64 // metric\x00scope.String() -> value
	queries int
}

func (q *stubQuerier) Query(metric string, scope metrics.Scope, since time.Time, agg metrics.Aggregation) (float64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.queries++
	v, ok := q.values[metric+"\x00"+scope.String()]
	if !ok {
		return 0, metrics.ErrNoData
	}
	return v, nil
}

// TestEngineRunsAgainstStubQuerier executes a full strategy whose
// checks are answered by a hand-rolled Querier instead of
// *metrics.Store.
func TestEngineRunsAgainstStubQuerier(t *testing.T) {
	stub := &stubQuerier{values: map[string]float64{
		"response_time\x00catalog/v2": 40, // healthy candidate
		"requests\x00catalog/v2":      100,
	}}
	sim := clock.NewSim(t0)
	table := router.NewTable()
	eng, err := NewEngine(Config{Clock: sim, Table: table, Store: stub})
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Launch(&Strategy{
		Name: "stubbed", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic:  TrafficSpec{CandidateWeight: 0.1},
			Duration: time.Minute,
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
				Interval: 10 * time.Second,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-run.Done():
			goto done
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("run did not finish; status=%v", run.Status())
		}
		if d, ok := sim.NextDeadline(); ok {
			sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}
done:
	if got := run.Status(); got != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded", got)
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.queries == 0 {
		t.Error("engine never queried the stub backend")
	}
}
