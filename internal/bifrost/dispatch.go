package bifrost

import (
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/metrics"
)

// This file is the evaluation dispatcher: the machinery that lets
// hundreds of concurrent runs evaluate their due checks each tick
// without serializing on one another. Three pieces:
//
//   - a bounded engine-wide worker pool (Config.EvalWorkers) that fans
//     a run's due checks out in parallel, so one slow topology
//     evaluation no longer delays the run's sibling metric checks. The
//     pool is acquired with try-semantics: when every slot is busy the
//     run evaluates inline on its own goroutine, so a stalled
//     evaluator can hog pool slots but can never starve another run.
//   - a single-flight tick cache deduplicating identical
//     (metric, scope, window, aggregation) queries evaluated at the
//     same instant — co-located checks (and, under the simulated
//     clock, co-scheduled runs) recompute nothing.
//   - per-run result ordering: whatever the pool does, results are
//     recorded into the run's event trail in check-state order with
//     the same early-trip cutoff as serial evaluation, so the journal
//     and the grading suite stay byte-identical at any worker count.
//
// Determinism: the run goroutine collects the batch, waits for every
// result, then records — it never re-arms its timer with evaluations
// in flight, which is what keeps clock.Sim lockstep drivers (the
// scenario suite) working unchanged.

// evalBatch evaluates checks against (strategy, phase) at now,
// returning results positionally. Batches of one and serial engines
// (EvalWorkers <= 1) evaluate inline; otherwise checks fan out to the
// bounded pool, falling back inline when no slot is free.
func (r *Run) evalBatch(p *Phase, checks []*Check, now time.Time) []CheckResult {
	e := r.engine
	results := make([]CheckResult, len(checks))
	if len(checks) <= 1 || e.evalSem == nil {
		for i, c := range checks {
			results[i] = e.evaluateCheck(r.strategy, p, c, now)
		}
		return results
	}
	var wg sync.WaitGroup
	for i, c := range checks {
		select {
		case e.evalSem <- struct{}{}:
			wg.Add(1)
			go func(i int, c *Check) {
				defer func() { <-e.evalSem; wg.Done() }()
				results[i] = e.evaluateCheck(r.strategy, p, c, now)
			}(i, c)
		default:
			// Pool saturated: evaluate on the run's own goroutine.
			// Progress never depends on another run releasing a slot.
			e.inlineEvals.Add(1)
			results[i] = e.evaluateCheck(r.strategy, p, c, now)
		}
	}
	wg.Wait()
	return results
}

// --- single-flight tick cache ---

// tickKey identifies one deduplicatable query: what is asked plus the
// instant it is asked at. Including the evaluation instant makes
// entries self-expiring — a later tick can never hit an earlier
// tick's answer.
type tickKey struct {
	metric string
	scope  metrics.Scope
	since  int64 // UnixNano
	agg    metrics.Aggregation
	now    int64 // UnixNano of the evaluation instant
}

// tickEntry is one in-flight or settled query. done is closed once
// val/err are set.
type tickEntry struct {
	done chan struct{}
	val  float64
	err  error
}

// tickCache single-flights identical queries within an evaluation
// instant. Entries from older instants are swept whenever a newer
// instant first appears, so the map stays bounded by one tick's worth
// of distinct queries (plus stragglers under the real clock, bounded
// by maxTickEntries).
type tickCache struct {
	mu      sync.Mutex
	entries map[tickKey]*tickEntry
	newest  int64

	hits   atomic.Int64
	misses atomic.Int64
}

// maxTickEntries hard-bounds the cache when real-clock ticks never
// share an instant; sweeping on instant advance keeps it far smaller
// in practice.
const maxTickEntries = 8192

func newTickCache() *tickCache {
	return &tickCache{entries: make(map[tickKey]*tickEntry)}
}

// query answers k through the cache, computing at most once per key.
func (tc *tickCache) query(k tickKey, compute func() (float64, error)) (float64, error) {
	tc.mu.Lock()
	if k.now > tc.newest || len(tc.entries) >= maxTickEntries {
		// A new instant obsoletes every earlier entry (their keys can
		// never be asked again). Waiters hold entry pointers, so
		// deleting map slots under them is safe.
		for old := range tc.entries {
			if old.now < k.now {
				delete(tc.entries, old)
			}
		}
		tc.newest = k.now
	}
	if ent, ok := tc.entries[k]; ok {
		tc.mu.Unlock()
		<-ent.done
		tc.hits.Add(1)
		return ent.val, ent.err
	}
	if len(tc.entries) >= maxTickEntries {
		// Still full after the sweep (everything shares this instant):
		// compute uncached rather than grow without bound.
		tc.mu.Unlock()
		tc.misses.Add(1)
		return compute()
	}
	ent := &tickEntry{done: make(chan struct{})}
	tc.entries[k] = ent
	tc.mu.Unlock()
	tc.misses.Add(1)
	ent.val, ent.err = compute()
	close(ent.done)
	return ent.val, ent.err
}

// cachedQuery is the metric evaluators' query path: identical queries
// evaluated at the same instant are computed once and shared.
func (e *Engine) cachedQuery(metric string, scope metrics.Scope, since time.Time, agg metrics.Aggregation, now time.Time) (float64, error) {
	if e.evalCache == nil {
		return e.cfg.Store.Query(metric, scope, since, agg)
	}
	k := tickKey{metric: metric, scope: scope, since: since.UnixNano(), agg: agg, now: now.UnixNano()}
	return e.evalCache.query(k, func() (float64, error) {
		return e.cfg.Store.Query(metric, scope, since, agg)
	})
}

// EvalPlaneStats is the dispatcher's health-surface snapshot.
type EvalPlaneStats struct {
	// Workers is the bounded pool size (1 = serial evaluation).
	Workers int `json:"workers"`
	// CacheHits/CacheMisses count tick-cache outcomes; hits are
	// queries coalesced away.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// InlineEvals counts evaluations that ran on the run's own
	// goroutine because the pool was saturated.
	InlineEvals int64 `json:"inlineEvals"`
}

// EvalPlane returns the dispatcher counters.
func (e *Engine) EvalPlane() EvalPlaneStats {
	st := EvalPlaneStats{Workers: e.evalWorkers, InlineEvals: e.inlineEvals.Load()}
	if e.evalCache != nil {
		st.CacheHits = e.evalCache.hits.Load()
		st.CacheMisses = e.evalCache.misses.Load()
	}
	return st
}
