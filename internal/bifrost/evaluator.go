package bifrost

import (
	"fmt"
	"strings"
	"time"

	"contexp/internal/health"
	"contexp/internal/metrics"
)

// This file is the engine's check-evaluation seam: every check kind is
// evaluated behind the common CheckEvaluator interface, so the phase
// loop (engine.go) is agnostic to what a check actually reads. The
// metric querier (Chapter 4's scalar checks) and the topology assessor
// (Chapter 5's structural comparison) are the two built-in
// implementations; future signal sources (log anomaly scores, SLO
// burn rates, ...) plug in as further kinds without touching the phase
// state machine.

// CheckResult is the outcome of one check evaluation.
type CheckResult struct {
	// Outcome is pass, fail, or inconclusive (not enough data).
	Outcome Outcome
	// Value is the observed scalar the check compared (metric value, or
	// the disallowed-change count for topology checks).
	Value float64
	// Detail is extra human-readable context carried into the run event.
	Detail string
}

// CheckEvaluator evaluates checks of one kind against its signal
// source.
type CheckEvaluator interface {
	Evaluate(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult
}

// TopologyAssessor is the narrow surface the engine's topology checks
// depend on: the live analysis plane (health.Monitor) implements it.
// Register/Freeze bracket a run's assessment lifecycle; Verdict returns
// the current classified, ranked structural difference.
type TopologyAssessor interface {
	// Register starts assessment for a run of service: traces carrying
	// the baseline or candidate version feed the respective graph.
	Register(run, service, baseline, candidate string)
	// Freeze stops folding new traces for a finished run while keeping
	// the accumulated assessment readable.
	Freeze(run string)
	// Verdict returns the run's current topology verdict under the named
	// heuristic ("" = default).
	Verdict(run, heuristic string) (*health.LiveVerdict, error)
}

var _ TopologyAssessor = (*health.Monitor)(nil)

// --- metric checks ---

// metricEvaluator is the original Chapter 4 check: an aggregation over
// a metric-store window compared against a threshold, in candidate,
// baseline, or relative scope.
type metricEvaluator struct {
	e *Engine
}

func (me metricEvaluator) Evaluate(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult {
	e := me.e
	window := c.Window
	if window <= 0 {
		window = e.checkInterval(c)
	}
	since := now.Add(-window)

	// Identical (metric, scope, window, aggregation) queries evaluated
	// at the same instant — sibling checks in this batch, co-scheduled
	// runs under the simulated clock — are computed once (dispatch.go).
	query := func(scope metrics.Scope) (float64, error) {
		return e.cachedQuery(c.Metric, scope, since, c.Aggregation, now)
	}

	switch c.Scope {
	case ScopeBaseline:
		v, err := query(metrics.Scope{Tenant: s.Tenant, Service: s.Service, Version: s.Baseline})
		if err != nil {
			return CheckResult{Outcome: OutcomeInconclusive}
		}
		return CheckResult{Outcome: compare(v, c), Value: v}
	case ScopeRelative:
		cand, err := query(e.candidateScope(s, p))
		if err != nil {
			return CheckResult{Outcome: OutcomeInconclusive}
		}
		base, err := query(metrics.Scope{Tenant: s.Tenant, Service: s.Service, Version: s.Baseline})
		if err != nil {
			return CheckResult{Outcome: OutcomeInconclusive, Value: cand}
		}
		bound := c.Threshold * base
		pass := cand <= bound
		if !c.Upper {
			pass = cand >= bound
		}
		if pass {
			return CheckResult{Outcome: OutcomePass, Value: cand}
		}
		return CheckResult{Outcome: OutcomeFail, Value: cand}
	default: // ScopeCandidate and zero value
		v, err := query(e.candidateScope(s, p))
		if err != nil {
			return CheckResult{Outcome: OutcomeInconclusive}
		}
		return CheckResult{Outcome: compare(v, c), Value: v}
	}
}

// --- topology checks ---

// topologyEvaluator gates phases on the live structural comparison:
// the classified changes between the run's baseline and candidate
// interaction graphs, minus the strategy's allowed change classes,
// ranked by the configured impact heuristic. More disallowed changes
// than max-ranked-changes fails the check.
type topologyEvaluator struct {
	e *Engine
}

func (te topologyEvaluator) Evaluate(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult {
	topo := te.e.cfg.Topology
	if topo == nil {
		return CheckResult{Outcome: OutcomeInconclusive, Detail: "no topology assessor configured"}
	}
	v, err := topo.Verdict(s.RunKey(), c.Heuristic)
	if err != nil {
		return CheckResult{Outcome: OutcomeInconclusive, Detail: err.Error()}
	}
	need := c.MinTraces
	if need <= 0 {
		need = 1
	}
	if v.BaselineTraces < need || v.CandidateTraces < need {
		return CheckResult{
			Outcome: OutcomeInconclusive,
			Detail: fmt.Sprintf("insufficient traces: baseline=%d candidate=%d (need %d each)",
				v.BaselineTraces, v.CandidateTraces, need),
		}
	}
	allowed := make(map[string]bool, len(c.Allow))
	for _, cls := range c.Allow {
		allowed[cls] = true
	}
	var disallowed []health.RankedChange
	for _, ch := range v.Changes {
		if !allowed[ch.Class] {
			disallowed = append(disallowed, ch)
		}
	}
	res := CheckResult{Value: float64(len(disallowed))}
	if len(disallowed) > c.MaxChanges {
		res.Outcome = OutcomeFail
	} else {
		res.Outcome = OutcomePass
	}
	res.Detail = topologyDetail(v, disallowed, c.MaxChanges)
	return res
}

// topologyDetail renders the verdict for the run's event trail: the
// evidence base, the counts, and the top-ranked disallowed changes.
func topologyDetail(v *health.LiveVerdict, disallowed []health.RankedChange, maxChanges int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "heuristic=%s changes=%d disallowed=%d max=%d baseline-traces=%d candidate-traces=%d",
		v.Heuristic, len(v.Changes), len(disallowed), maxChanges, v.BaselineTraces, v.CandidateTraces)
	for i, ch := range disallowed {
		if i >= 3 {
			fmt.Fprintf(&b, "; +%d more", len(disallowed)-i)
			break
		}
		fmt.Fprintf(&b, "; %s: %s (score=%.3g)", ch.Class, ch.Edge, ch.Score)
	}
	return b.String()
}
