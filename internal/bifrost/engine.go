package bifrost

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/clock"
	"contexp/internal/expmodel"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// RunStatus is the lifecycle state of a strategy run.
type RunStatus int

// Run states.
const (
	StatusRunning RunStatus = iota + 1
	// StatusSucceeded: the candidate was promoted to all users.
	StatusSucceeded
	// StatusRolledBack: users were rerouted to the baseline after a
	// failed phase.
	StatusRolledBack
	// StatusAborted: the run ended without touching routing.
	StatusAborted
)

// String names the status.
func (s RunStatus) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusSucceeded:
		return "succeeded"
	case StatusRolledBack:
		return "rolled-back"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// EventType classifies run events.
type EventType string

// Event types.
const (
	// EventRunLaunched opens every run's log; its journal record carries
	// the strategy's canonical DSL source, making the journal
	// self-contained for recovery.
	EventRunLaunched  EventType = "run-launched"
	EventPhaseEntered EventType = "phase-entered"
	EventCheckResult  EventType = "check-result"
	EventPhaseOutcome EventType = "phase-outcome"
	EventTransition   EventType = "transition"
	// EventTrafficApplied is journaled immediately before a routing
	// change is installed — the write-ahead half of enactment: after a
	// crash the journal names the last routing intent even if the
	// change itself was lost with the in-memory table.
	EventTrafficApplied EventType = "traffic-applied"
	EventRunFinished    EventType = "run-finished"
	EventRolloutStep    EventType = "rollout-step"

	// EventTopologyVerdict is the topology counterpart of
	// EventCheckResult: one evaluation of a `kind = topology` check,
	// carrying the structural verdict (change counts, evidence base, and
	// the top-ranked disallowed changes) in its detail. Verdicts go
	// through the write-ahead journal like every event, so recovery
	// replays the structural decisions a crashed daemon already made
	// instead of re-deriving them from traces that died with the
	// process.
	EventTopologyVerdict EventType = "topology-verdict"

	// Queue lifecycle events. They are journaled by the Scheduler under
	// the strategy's (future) run name before any run exists:
	// EventRunQueued carries the strategy DSL (like EventRunLaunched) so
	// a crashed daemon can restore still-pending submissions,
	// EventRunScheduled marks the moment the scheduler hands the
	// strategy to Engine.Launch, and EventRunDequeued marks a queued
	// submission withdrawn before launch. Engine.Recover ignores them;
	// RecoverQueue replays them.
	EventRunQueued    EventType = "run-queued"
	EventRunScheduled EventType = "run-scheduled"
	EventRunDequeued  EventType = "run-dequeued"
)

// queueLifecycle reports whether an event type belongs to the
// scheduler's queue lifecycle rather than to a run's own log.
func queueLifecycle(t EventType) bool {
	return t == EventRunQueued || t == EventRunScheduled || t == EventRunDequeued
}

// Event is one entry of a run's audit trail.
type Event struct {
	At      time.Time `json:"at"`
	Type    EventType `json:"type"`
	Phase   string    `json:"phase,omitempty"`
	Check   string    `json:"check,omitempty"`
	Outcome Outcome   `json:"outcome,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Querier is the narrow metric-query surface the engine's check
// evaluation depends on. *metrics.Store satisfies it; so does any
// external telemetry backend (Prometheus adapter, test stub), which
// decouples the execution engine from the concrete store.
type Querier interface {
	Query(metric string, scope metrics.Scope, since time.Time, agg metrics.Aggregation) (float64, error)
}

var _ Querier = (*metrics.Store)(nil)

// Config parameterizes an Engine.
type Config struct {
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Table is the routing table the engine manipulates (required).
	Table *router.Table
	// Store answers the metric queries checks evaluate (required).
	// Typically a *metrics.Store.
	Store Querier
	// DefaultCheckInterval applies to checks without an Interval
	// (default 10s).
	DefaultCheckInterval time.Duration
	// SampleMetric is the series counted against Phase.MinSamples
	// (default "requests").
	SampleMetric string
	// Journal, when set, receives every run event as a write-ahead
	// record before the event's side effects are applied. Replaying the
	// journal into a fresh engine (Recover) rebuilds all runs. Nil
	// disables journaling: runs live only in process memory, the
	// pre-journal behavior.
	Journal journal.Journal
	// Topology, when set, answers `kind = topology` checks from the live
	// interaction-graph comparison (typically a *health.Monitor). Every
	// launched run is registered with it so GET /v1/runs/{name}/health
	// has data even for metric-only strategies. Nil rejects strategies
	// with topology checks at launch.
	Topology TopologyAssessor
	// EvalWorkers bounds the engine-wide pool that fans a run's due
	// checks out in parallel (dispatch.go). 0 defaults to GOMAXPROCS;
	// 1 evaluates fully serially on each run's own goroutine. Event
	// trails are byte-identical at any setting.
	EvalWorkers int
	// DisableEvalCache turns off the single-flight tick cache that
	// deduplicates identical queries within an evaluation instant.
	// Meant for benchmarking the uncoalesced path; production keeps
	// the cache on.
	DisableEvalCache bool
}

// Engine executes live testing strategies concurrently: the Bifrost
// middleware core (Fig 4.4). One goroutine drives each run's state
// machine; checks are multiplexed on per-run timers; routing changes go
// through the shared router table.
type Engine struct {
	cfg Config

	// evaluators dispatches check evaluation by kind: the metric querier
	// and the topology assessor are the built-in implementations behind
	// the common CheckEvaluator seam.
	evaluators map[CheckKind]CheckEvaluator

	mu      sync.Mutex
	runs    map[string]*Run
	nextSeq uint64 // launch-order counter

	// journalErrs counts events that could not be journaled (the event
	// still lands in the in-memory trail; the run keeps going).
	journalErrs atomic.Int64

	// Instrumentation for the engine-performance evaluation
	// (Figs 4.7–4.10): total time spent evaluating checks, evaluation
	// count, and the delay between a check's due time and its actual
	// evaluation.
	evalBusy  atomic.Int64 // nanoseconds
	evalCount atomic.Int64

	delayMu sync.Mutex
	delays  []time.Duration

	// Evaluation dispatcher (dispatch.go): bounded worker pool and
	// single-flight tick cache. evalSem is nil when evaluation is
	// serial (EvalWorkers <= 1); evalCache is nil when disabled.
	evalWorkers int
	evalSem     chan struct{}
	evalCache   *tickCache
	inlineEvals atomic.Int64
}

// NewEngine creates an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Table == nil {
		return nil, errors.New("bifrost: engine requires a routing table")
	}
	if cfg.Store == nil {
		return nil, errors.New("bifrost: engine requires a metric store")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.DefaultCheckInterval <= 0 {
		cfg.DefaultCheckInterval = 10 * time.Second
	}
	if cfg.SampleMetric == "" {
		cfg.SampleMetric = "requests"
	}
	e := &Engine{cfg: cfg, runs: make(map[string]*Run)}
	e.evaluators = map[CheckKind]CheckEvaluator{
		CheckMetric:   metricEvaluator{e},
		CheckTopology: topologyEvaluator{e},
	}
	e.evalWorkers = cfg.EvalWorkers
	if e.evalWorkers <= 0 {
		e.evalWorkers = runtime.GOMAXPROCS(0)
	}
	if e.evalWorkers > 1 {
		e.evalSem = make(chan struct{}, e.evalWorkers)
	}
	if !cfg.DisableEvalCache {
		e.evalCache = newTickCache()
	}
	return e, nil
}

// Run is one executing (or finished) strategy.
type Run struct {
	strategy *Strategy
	engine   *Engine
	// seq is the launch-order position (recovered runs keep their
	// original relative order).
	seq uint64
	// recovered marks runs rebuilt from a journal replay.
	recovered bool

	mu       sync.Mutex
	status   RunStatus
	phaseIdx int
	events   []Event

	done   chan struct{}
	cancel chan struct{}
	// cancelOnce guards cancel closure.
	cancelOnce sync.Once
}

// ErrServiceBusy marks a launch rejected because another live run of
// the same tenant is already manipulating the same service's routing.
// Two concurrent strategies on one service would silently overwrite
// each other's routing table entries; callers either surface the
// conflict or queue the strategy through a Scheduler. The conflict is
// tenant-scoped: tenants own disjoint routing namespaces, so tenant
// A's canary never queues behind tenant B's run on a same-named
// service.
var ErrServiceBusy = errors.New("service is busy with another running strategy")

// Launch validates the strategy, journals the launch, installs the
// all-baseline route, and starts executing. Strategy names must be
// unique among a tenant's live runs, and at most one of a tenant's
// live runs may target a given service (ErrServiceBusy otherwise).
func (e *Engine) Launch(s *Strategy) (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.hasTopologyChecks() && e.cfg.Topology == nil {
		return nil, fmt.Errorf("bifrost: %s: strategy gates on topology checks but the engine has no topology assessor (enable live tracing)", s.Name)
	}
	e.mu.Lock()
	if existing, ok := e.runs[s.RunKey()]; ok && existing.Status() == StatusRunning {
		e.mu.Unlock()
		return nil, fmt.Errorf("bifrost: strategy %q is already running", s.Name)
	}
	for _, other := range e.runs {
		if other.strategy.Tenant == s.Tenant && other.strategy.Service == s.Service &&
			other.Status() == StatusRunning {
			e.mu.Unlock()
			return nil, fmt.Errorf("bifrost: launching %q: %w: %q owns service %q",
				s.Name, ErrServiceBusy, other.strategy.Name, s.Service)
		}
	}
	run := &Run{
		strategy: s,
		engine:   e,
		seq:      e.nextSeq,
		status:   StatusRunning,
		done:     make(chan struct{}),
		cancel:   make(chan struct{}),
	}
	e.nextSeq++
	e.runs[s.RunKey()] = run
	e.mu.Unlock()

	// Open the run's topology assessment before any traffic shifts, so
	// the baseline graph already grows while the first phase routes.
	if e.cfg.Topology != nil {
		e.cfg.Topology.Register(s.RunKey(), s.RouteService(), s.Baseline, s.Candidate)
	}

	// Write-ahead: the launch record (carrying the strategy source) and
	// the baseline routing intent hit the journal before the routing
	// table changes.
	now := e.cfg.Clock.Now()
	run.recordWire(Event{At: now, Type: EventRunLaunched,
		Detail: fmt.Sprintf("service=%s baseline=%s candidate=%s phases=%d",
			s.Service, s.Baseline, s.Candidate, len(s.Phases))},
		WriteDSL(s), 0)
	run.record(Event{At: now, Type: EventTrafficApplied, Detail: "baseline=100%"})
	if err := e.routeBaseline(s); err != nil {
		run.recordWire(Event{At: e.cfg.Clock.Now(), Type: EventRunFinished,
			Detail: "aborted; launch routing error: " + err.Error()}, "", StatusAborted)
		e.mu.Lock()
		delete(e.runs, s.RunKey())
		e.mu.Unlock()
		return nil, err
	}
	go run.loop()
	return run, nil
}

// Get returns the run for a (tenant-qualified) strategy name: the bare
// name for the default tenant, "tenant/name" otherwise.
func (e *Engine) Get(name string) (*Run, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[name]
	return r, ok
}

// Runs returns all runs (live and finished) in launch order, so lists
// read chronologically rather than alphabetically.
func (e *Engine) Runs() []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Run, 0, len(e.runs))
	for _, r := range e.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// JournalErrors reports how many events failed to reach the journal.
// Non-zero means the durable trail is incomplete even though runs kept
// executing — a health-surface red flag.
func (e *Engine) JournalErrors() int64 { return e.journalErrs.Load() }

// EngineMetrics is an instrumentation snapshot.
type EngineMetrics struct {
	// Evaluations is the number of check evaluations performed.
	Evaluations int64
	// BusyTime is the cumulative time spent evaluating checks; divided
	// by wall time it approximates the engine's CPU utilization
	// (Figs 4.7 and 4.9).
	BusyTime time.Duration
	// Delays are the observed lags between check due times and actual
	// evaluations (Figs 4.8 and 4.10). Capped at 100k samples.
	Delays []time.Duration
}

// Metrics returns a copy of the instrumentation counters.
func (e *Engine) Metrics() EngineMetrics {
	e.delayMu.Lock()
	delays := make([]time.Duration, len(e.delays))
	copy(delays, e.delays)
	e.delayMu.Unlock()
	return EngineMetrics{
		Evaluations: e.evalCount.Load(),
		BusyTime:    time.Duration(e.evalBusy.Load()),
		Delays:      delays,
	}
}

// EvalStats returns the evaluation count and cumulative evaluation
// time without copying the delay samples — the cheap read for health
// surfaces that poll frequently.
func (e *Engine) EvalStats() (evaluations int64, busy time.Duration) {
	return e.evalCount.Load(), time.Duration(e.evalBusy.Load())
}

// ResetMetrics clears the instrumentation counters.
func (e *Engine) ResetMetrics() {
	e.evalBusy.Store(0)
	e.evalCount.Store(0)
	e.delayMu.Lock()
	e.delays = nil
	e.delayMu.Unlock()
}

const maxDelaySamples = 100_000

func (e *Engine) recordDelay(d time.Duration) {
	e.delayMu.Lock()
	if len(e.delays) < maxDelaySamples {
		e.delays = append(e.delays, d)
	}
	e.delayMu.Unlock()
}

// --- Run accessors ---

// Status returns the run's lifecycle state.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// CurrentPhase returns the active phase name ("" when finished).
func (r *Run) CurrentPhase() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status != StatusRunning || r.phaseIdx < 0 || r.phaseIdx >= len(r.strategy.Phases) {
		return ""
	}
	return r.strategy.Phases[r.phaseIdx].Name
}

// Events returns a copy of the audit trail.
func (r *Run) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Done is closed when the run finishes.
func (r *Run) Done() <-chan struct{} { return r.done }

// Abort cancels the run; the current phase concludes as aborted without
// routing changes.
func (r *Run) Abort() {
	r.cancelOnce.Do(func() { close(r.cancel) })
}

// Strategy returns the run's strategy.
func (r *Run) Strategy() *Strategy { return r.strategy }

// Recovered reports whether this run was rebuilt from a journal replay
// rather than launched in this process.
func (r *Run) Recovered() bool { return r.recovered }

// Seq is the run's launch-order position; Engine.Runs sorts by it, so
// it doubles as a stable pagination cursor for list endpoints.
func (r *Run) Seq() uint64 { return r.seq }

// record journals the event (write-ahead), then appends it to the
// in-memory trail.
func (r *Run) record(ev Event) { r.recordWire(ev, "", 0) }

// recordWire is record plus the journal-only envelope fields: the
// strategy source on run-launched records and the terminal status on
// run-finished records. A journal failure counts against the engine's
// journal-error counter but does not stop the run: enactment degrades
// to in-memory-only rather than halting live traffic manipulation
// mid-phase.
func (r *Run) recordWire(ev Event, strategyDSL string, status RunStatus) {
	e := r.engine
	if e.cfg.Journal != nil {
		rec, err := encodeEvent(r.strategy.RunKey(), r.strategy.Tenant, ev, strategyDSL, status)
		if err == nil {
			err = e.cfg.Journal.Append(rec)
		}
		if err != nil {
			e.journalErrs.Add(1)
		}
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// --- execution ---

func (r *Run) loop() {
	r.loopFrom(0, make(map[string]int, len(r.strategy.Phases)))
}

// loopFrom drives the state machine starting at phase startIdx with the
// given consumed-retry counts — the entry point shared by fresh
// launches (index 0, empty counts) and crash recovery (the interrupted
// phase, counts rebuilt from the journal).
func (r *Run) loopFrom(startIdx int, retries map[string]int) {
	defer close(r.done)
	e := r.engine
	s := r.strategy

	idx := startIdx
	for {
		if idx < 0 || idx >= len(s.Phases) {
			// Walked past the last phase: promote.
			r.finish(StatusSucceeded, "")
			return
		}
		r.mu.Lock()
		r.phaseIdx = idx
		r.mu.Unlock()
		phase := &s.Phases[idx]

		outcome, aborted := r.executePhase(phase)
		if aborted {
			r.finish(StatusAborted, "")
			return
		}
		r.record(Event{At: e.cfg.Clock.Now(), Type: EventPhaseOutcome, Phase: phase.Name, Outcome: outcome})

		var tr Transition
		switch outcome {
		case OutcomePass:
			tr = phase.successTransition()
		case OutcomeFail:
			tr = phase.failureTransition()
		default:
			tr = phase.inconclusiveTransition()
			if tr.Kind == TransitionRetry {
				retries[phase.Name]++
				if retries[phase.Name] > phase.maxRetries() {
					// Retries exhausted: treat as failure.
					tr = phase.failureTransition()
				}
			}
		}
		r.record(Event{At: e.cfg.Clock.Now(), Type: EventTransition, Phase: phase.Name,
			Detail: describeTransition(tr)})

		switch tr.Kind {
		case TransitionNext:
			idx++
		case TransitionGoto:
			idx = s.phaseIndex(tr.Target)
		case TransitionRetry:
			// Re-execute the same phase.
		case TransitionRollback:
			r.finish(StatusRolledBack, "")
			return
		case TransitionPromote:
			r.finish(StatusSucceeded, "")
			return
		case TransitionAbort:
			r.finish(StatusAborted, "")
			return
		default:
			r.finish(StatusAborted, fmt.Sprintf("unknown transition %v", tr.Kind))
			return
		}
	}
}

// finish settles the run: it journals the terminal routing intent,
// applies it (candidate for success, baseline for rollback, untouched
// for abort), and records the run-finished event carrying the terminal
// status.
func (r *Run) finish(status RunStatus, detail string) {
	e := r.engine
	var routeErr error
	switch status {
	case StatusSucceeded:
		r.record(Event{At: e.cfg.Clock.Now(), Type: EventTrafficApplied, Detail: "candidate=100%"})
		routeErr = e.routeCandidate(r.strategy)
	case StatusRolledBack:
		r.record(Event{At: e.cfg.Clock.Now(), Type: EventTrafficApplied, Detail: "baseline=100%"})
		routeErr = e.routeBaseline(r.strategy)
	}
	d := status.String()
	if detail != "" {
		d += "; " + detail
	}
	if routeErr != nil {
		d += "; routing error: " + routeErr.Error()
	}
	r.mu.Lock()
	r.status = status
	r.mu.Unlock()
	r.recordWire(Event{At: e.cfg.Clock.Now(), Type: EventRunFinished, Detail: d}, "", status)
	// Freeze the topology assessment so post-run traffic does not dilute
	// the record of what the experiment observed.
	if e.cfg.Topology != nil {
		e.cfg.Topology.Freeze(r.strategy.RunKey())
	}
}

// executePhase runs one phase to its conclusion. The bool result is
// true when the run was aborted mid-phase.
func (r *Run) executePhase(p *Phase) (Outcome, bool) {
	e := r.engine
	now := e.cfg.Clock.Now()
	r.record(Event{At: now, Type: EventPhaseEntered, Phase: p.Name})

	if p.Practice == expmodel.PracticeGradualRollout {
		return r.executeRollout(p)
	}
	if err := r.applyTraffic(p, p.Traffic.CandidateWeight); err != nil {
		r.record(Event{At: now, Type: EventCheckResult, Phase: p.Name, Detail: "routing error: " + err.Error()})
		return OutcomeFail, false
	}
	return r.observe(p, now, p.Duration)
}

// applyTraffic journals the routing intent as a traffic-applied event,
// then installs it on the table — journal first, side effect second.
func (r *Run) applyTraffic(p *Phase, weight float64) error {
	e := r.engine
	detail := fmt.Sprintf("candidate-weight=%.0f%%", weight*100)
	if p.Traffic.Mirror {
		detail = "mirror-to-candidate"
	}
	r.record(Event{At: e.cfg.Clock.Now(), Type: EventTrafficApplied, Phase: p.Name, Detail: detail})
	return e.applyTraffic(r.strategy, p, weight)
}

func (r *Run) executeRollout(p *Phase) (Outcome, bool) {
	e := r.engine
	for _, w := range p.Traffic.Steps {
		now := e.cfg.Clock.Now()
		if err := r.applyTraffic(p, w); err != nil {
			return OutcomeFail, false
		}
		r.record(Event{At: now, Type: EventRolloutStep, Phase: p.Name,
			Detail: fmt.Sprintf("weight=%.0f%%", w*100)})
		outcome, aborted := r.observe(p, now, p.Traffic.StepDuration)
		if aborted {
			return outcome, true
		}
		if outcome != OutcomePass {
			return outcome, false
		}
	}
	return OutcomePass, false
}

// checkState tracks one check's consecutive failures within a phase.
type checkState struct {
	check    *Check
	due      time.Time
	failures int
	// sawData records whether any evaluation had data.
	sawData bool
}

// observe runs the check loop for `dur` starting at `start`. It
// implements the timed execution of multiple checks (Fig 4.3): each
// check fires on its own interval; a check reaching FailuresToTrip
// consecutive failures concludes the phase immediately.
func (r *Run) observe(p *Phase, start time.Time, dur time.Duration) (Outcome, bool) {
	e := r.engine
	phaseEnd := start.Add(dur)

	states := make([]*checkState, len(p.Checks))
	for i := range p.Checks {
		c := &p.Checks[i]
		states[i] = &checkState{check: c, due: start.Add(e.checkInterval(c))}
	}
	due := make([]*checkState, 0, len(states))
	checks := make([]*Check, 0, len(states))

	for {
		now := e.cfg.Clock.Now()
		next := phaseEnd
		for _, st := range states {
			if st.due.Before(next) {
				next = st.due
			}
		}
		if next.After(now) {
			select {
			case <-e.cfg.Clock.After(next.Sub(now)):
			case <-r.cancel:
				return OutcomeInconclusive, true
			}
		}
		now = e.cfg.Clock.Now()

		// Collect the tick's due checks in state order and evaluate
		// them as one batch through the dispatcher (dispatch.go) —
		// possibly in parallel, possibly coalesced with identical
		// queries elsewhere. The batch joins before anything is
		// recorded, so the trail below is in state order regardless of
		// worker count.
		due = due[:0]
		checks = checks[:0]
		for _, st := range states {
			if st.due.After(now) {
				continue
			}
			e.recordDelay(now.Sub(st.due))
			due = append(due, st)
			checks = append(checks, st.check)
		}
		results := r.evalBatch(p, checks, now)

		for i, st := range due {
			res := results[i]
			outcome := res.Outcome
			// Topology verdicts are journaled as their own typed event so
			// the structural decision trail survives crashes verbatim;
			// metric checks keep their original check-result form.
			evType := EventCheckResult
			detail := fmt.Sprintf("value=%.4g", res.Value)
			if st.check.Kind == CheckTopology {
				evType = EventTopologyVerdict
				detail = res.Detail
			} else if res.Detail != "" {
				detail += "; " + res.Detail
			}
			r.record(Event{At: now, Type: evType, Phase: p.Name,
				Check: st.check.Name, Outcome: outcome, Detail: detail})
			switch outcome {
			case OutcomeFail:
				st.failures++
				st.sawData = true
				if st.failures >= e.failuresToTrip(st.check) {
					// Tripped: later batch results are discarded
					// unrecorded, exactly like the serial loop that
					// never evaluated them.
					return OutcomeFail, false
				}
			case OutcomePass:
				st.failures = 0
				st.sawData = true
			default:
				// No data: does not reset or advance the failure count.
			}
			st.due = st.due.Add(e.checkInterval(st.check))
		}

		if !now.Before(phaseEnd) {
			return r.concludePhase(p, start, now), false
		}
	}
}

// concludePhase decides the phase outcome at its natural end.
func (r *Run) concludePhase(p *Phase, start, now time.Time) Outcome {
	e := r.engine
	// Sample-size gate: without enough candidate data the phase is
	// inconclusive regardless of check outcomes.
	if p.MinSamples > 0 {
		scope := e.candidateScope(r.strategy, p)
		n, err := e.cfg.Store.Query(e.cfg.SampleMetric, scope, start, metrics.AggCount)
		if err != nil || int(n) < p.MinSamples {
			return OutcomeInconclusive
		}
	}
	checks := make([]*Check, len(p.Checks))
	for i := range p.Checks {
		checks[i] = &p.Checks[i]
	}
	results := r.evalBatch(p, checks, now)
	outcome := OutcomePass
	for i, c := range checks {
		res := results[i]
		// Conclude-time topology verdicts are journaled like interval
		// ones: the structural evidence that decided the phase must
		// survive in the event trail.
		if c.Kind == CheckTopology {
			r.record(Event{At: now, Type: EventTopologyVerdict, Phase: p.Name,
				Check: c.Name, Outcome: res.Outcome, Detail: res.Detail})
		}
		switch res.Outcome {
		case OutcomeFail:
			// Later results are discarded unrecorded, matching the
			// serial loop's early return.
			return OutcomeFail
		case OutcomeInconclusive:
			outcome = OutcomeInconclusive
		}
	}
	return outcome
}

func (e *Engine) checkInterval(c *Check) time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return e.cfg.DefaultCheckInterval
}

func (e *Engine) failuresToTrip(c *Check) int {
	if c.FailuresToTrip > 0 {
		return c.FailuresToTrip
	}
	return 1
}

// candidateScope resolves where the candidate's metrics live: dark
// launches record under the "dark" variant tag.
func (e *Engine) candidateScope(s *Strategy, p *Phase) metrics.Scope {
	scope := metrics.Scope{Tenant: s.Tenant, Service: s.Service, Version: s.Candidate}
	if p.Traffic.Mirror {
		scope.Variant = "dark"
	}
	return scope
}

// evaluateCheck evaluates one check at `now` through the evaluator for
// its kind, with the engine's busy/delay instrumentation around it.
func (e *Engine) evaluateCheck(s *Strategy, p *Phase, c *Check, now time.Time) CheckResult {
	startEval := time.Now()
	defer func() {
		e.evalBusy.Add(int64(time.Since(startEval)))
		e.evalCount.Add(1)
	}()
	ev := e.evaluators[c.Kind]
	if ev == nil {
		return CheckResult{Outcome: OutcomeInconclusive,
			Detail: fmt.Sprintf("no evaluator for check kind %v", c.Kind)}
	}
	return ev.Evaluate(s, p, c, now)
}

func compare(v float64, c *Check) Outcome {
	if c.Upper {
		if v <= c.Threshold {
			return OutcomePass
		}
		return OutcomeFail
	}
	if v >= c.Threshold {
		return OutcomePass
	}
	return OutcomeFail
}

// --- routing ---

// applyTraffic installs the routing a phase requires, with the
// candidate at the given weight (weight is the step weight for gradual
// rollouts).
func (e *Engine) applyTraffic(s *Strategy, p *Phase, weight float64) error {
	route := router.Route{
		Service: s.RouteService(),
		Backends: []router.Backend{
			{Version: s.Baseline, Weight: 1 - weight},
			{Version: s.Candidate, Weight: weight},
		},
		StickySalt: s.Name,
	}
	if p.Traffic.Mirror {
		route.Backends = []router.Backend{{Version: s.Baseline, Weight: 1}}
		route.Mirrors = []string{s.Candidate}
	}
	for _, g := range p.Traffic.Groups {
		route.Rules = append(route.Rules, router.Rule{
			Name:    "group-" + string(g),
			Match:   router.GroupMatcher{Group: g},
			Version: s.Candidate,
		})
	}
	return e.cfg.Table.Set(route)
}

func (e *Engine) routeBaseline(s *Strategy) error {
	return e.cfg.Table.Set(router.Route{
		Service:  s.RouteService(),
		Backends: []router.Backend{{Version: s.Baseline, Weight: 1}},
	})
}

func (e *Engine) routeCandidate(s *Strategy) error {
	return e.cfg.Table.Set(router.Route{
		Service:  s.RouteService(),
		Backends: []router.Backend{{Version: s.Candidate, Weight: 1}},
	})
}
