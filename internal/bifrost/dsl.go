package bifrost

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"contexp/internal/expmodel"
	"contexp/internal/health"
	"contexp/internal/metrics"
)

// This file implements the experimentation-as-code DSL (Section 4.4):
// strategies are written as text, shared, reviewed, and versioned like
// any other code. Example:
//
//	strategy "recommendation-rollout" {
//	    service   = "recommendation"
//	    baseline  = "v1"
//	    candidate = "v2"
//
//	    phase "canary" {
//	        practice    = canary
//	        traffic     = 5%
//	        duration    = 10m
//	        min-samples = 200
//	        check "latency" {
//	            metric    = response_time
//	            aggregate = p95
//	            max       = 250
//	            interval  = 10s
//	        }
//	        check "regression" {
//	            metric    = response_time
//	            aggregate = mean
//	            scope     = relative
//	            max       = 1.25
//	            interval  = 15s
//	        }
//	        check "structure" {
//	            kind       = topology
//	            heuristic  = "subtree-weighted"
//	            allow      = updated-callee-version, updated-caller-version
//	            min-traces = 25
//	            interval   = 30s
//	        }
//	        on success      -> phase "rollout"
//	        on failure      -> rollback
//	        on inconclusive -> retry
//	        max-retries = 2
//	    }
//
//	    phase "rollout" {
//	        practice      = gradual-rollout
//	        steps         = 25%, 50%, 75%, 100%
//	        step-duration = 5m
//	        check "latency" {
//	            metric    = response_time
//	            aggregate = p95
//	            max       = 250
//	        }
//	        on success -> promote
//	        on failure -> rollback
//	    }
//	}
//
// Comments start with '#' or '//' and run to end of line.

// ParseStrategy parses DSL source into a validated Strategy.
func ParseStrategy(src string) (*Strategy, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.parseStrategy()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- lexer ---

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokString
	tokNumber // numeric literal with optional unit suffix ("5", "2.5", "10m", "50%")
	tokLBrace
	tokRBrace
	tokAssign
	tokArrow
	tokComma
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '=':
			toks = append(toks, token{tokAssign, "=", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '-' && i+1 < n && src[i+1] == '>':
			toks = append(toks, token{tokArrow, "->", line})
			i += 2
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= n || src[j] != '"' {
				return nil, fmt.Errorf("bifrost: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			// Attach unit suffixes, including composite durations like
			// "10m30s" or "1h0m0s" where digits follow unit letters.
			for j < n && (src[j] == '%' || isUnitLetter(rune(src[j]))) {
				j++
				for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
					j++
				}
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("bifrost: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '/'
}

func isUnitLetter(r rune) bool {
	switch r {
	case 'n', 's', 'm', 'h', 'u', 'µ':
		return true
	default:
		return false
	}
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("bifrost: line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("bifrost: line %d: expected %q, got %s", t.line, kw, t)
	}
	return nil
}

func (p *parser) parseStrategy() (*Strategy, error) {
	if err := p.expectKeyword("strategy"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString, "strategy name string")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	s := &Strategy{Name: name.text}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			if tail := p.peek(); tail.kind != tokEOF {
				return nil, fmt.Errorf("bifrost: line %d: unexpected %s after strategy", tail.line, tail)
			}
			return s, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("bifrost: line %d: unexpected end of input in strategy", t.line)
		case t.kind == tokIdent && t.text == "phase":
			phase, err := p.parsePhase()
			if err != nil {
				return nil, err
			}
			s.Phases = append(s.Phases, *phase)
		case t.kind == tokIdent:
			key, val, err := p.parseAssignment()
			if err != nil {
				return nil, err
			}
			switch key {
			case "service":
				s.Service = val.text
			case "baseline":
				s.Baseline = val.text
			case "candidate":
				s.Candidate = val.text
			default:
				return nil, fmt.Errorf("bifrost: line %d: unknown strategy attribute %q", t.line, key)
			}
		default:
			return nil, fmt.Errorf("bifrost: line %d: unexpected %s in strategy", t.line, t)
		}
	}
}

// parseAssignment parses `key = value` and returns the key and the raw
// value token (string, ident, or number).
func (p *parser) parseAssignment() (string, token, error) {
	key := p.next() // known tokIdent
	if _, err := p.expect(tokAssign, "="); err != nil {
		return "", token{}, err
	}
	val := p.next()
	if val.kind != tokString && val.kind != tokIdent && val.kind != tokNumber {
		return "", token{}, fmt.Errorf("bifrost: line %d: expected value after %s =, got %s", val.line, key.text, val)
	}
	return key.text, val, nil
}

func (p *parser) parsePhase() (*Phase, error) {
	p.next() // "phase"
	name, err := p.expect(tokString, "phase name string")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	phase := &Phase{Name: name.text}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			return phase, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("bifrost: line %d: unexpected end of input in phase %q", t.line, phase.Name)
		case t.kind == tokIdent && t.text == "check":
			check, err := p.parseCheck()
			if err != nil {
				return nil, err
			}
			phase.Checks = append(phase.Checks, *check)
		case t.kind == tokIdent && t.text == "on":
			if err := p.parseChain(phase); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "steps":
			if err := p.parseSteps(phase); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "groups":
			if err := p.parseGroups(phase); err != nil {
				return nil, err
			}
		case t.kind == tokIdent:
			key, val, err := p.parseAssignment()
			if err != nil {
				return nil, err
			}
			if err := applyPhaseAttr(phase, key, val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("bifrost: line %d: unexpected %s in phase %q", t.line, t, phase.Name)
		}
	}
}

func applyPhaseAttr(phase *Phase, key string, val token) error {
	switch key {
	case "practice":
		pr, err := expmodel.ParsePractice(val.text)
		if err != nil {
			return fmt.Errorf("bifrost: line %d: %w", val.line, err)
		}
		phase.Practice = pr
		if pr == expmodel.PracticeDarkLaunch {
			phase.Traffic.Mirror = true
		}
	case "traffic":
		w, err := parsePercent(val)
		if err != nil {
			return err
		}
		phase.Traffic.CandidateWeight = w
	case "duration":
		d, err := parseDurationTok(val)
		if err != nil {
			return err
		}
		phase.Duration = d
	case "step-duration":
		d, err := parseDurationTok(val)
		if err != nil {
			return err
		}
		phase.Traffic.StepDuration = d
	case "min-samples":
		n, err := parseIntTok(val)
		if err != nil {
			return err
		}
		phase.MinSamples = n
	case "max-retries":
		n, err := parseIntTok(val)
		if err != nil {
			return err
		}
		phase.MaxRetries = n
	default:
		return fmt.Errorf("bifrost: line %d: unknown phase attribute %q", val.line, key)
	}
	return nil
}

func (p *parser) parseCheck() (*Check, error) {
	p.next() // "check"
	name, err := p.expect(tokString, "check name string")
	if err != nil {
		return nil, err
	}
	open, err := p.expect(tokLBrace, "{")
	if err != nil {
		return nil, err
	}
	c := &Check{Name: name.text, Scope: ScopeCandidate}
	// seen tracks which attributes appeared, for duplicate detection on
	// the topology attributes and for kind/attribute consistency checks
	// once the whole block is parsed (attribute order is free, so `kind`
	// may come last).
	seen := make(map[string]bool)
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			if err := finishCheck(c, seen, open.line); err != nil {
				return nil, err
			}
			return c, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("bifrost: line %d: unexpected end of input in check %q", t.line, c.Name)
		case t.kind == tokIdent && t.text == "allow":
			if seen["allow"] {
				return nil, fmt.Errorf("bifrost: line %d: duplicate attribute %q in check %q", t.line, "allow", c.Name)
			}
			seen["allow"] = true
			if err := p.parseAllow(c); err != nil {
				return nil, err
			}
		case t.kind == tokIdent:
			key, val, err := p.parseAssignment()
			if err != nil {
				return nil, err
			}
			if topologyCheckAttr(key) && seen[key] {
				return nil, fmt.Errorf("bifrost: line %d: duplicate attribute %q in check %q", val.line, key, c.Name)
			}
			seen[key] = true
			if err := applyCheckAttr(c, key, val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("bifrost: line %d: unexpected %s in check %q", t.line, t, c.Name)
		}
	}
}

// topologyCheckAttr reports whether an attribute belongs to the
// topology check vocabulary (these are duplicate-checked strictly).
func topologyCheckAttr(key string) bool {
	switch key {
	case "kind", "heuristic", "max-ranked-changes", "min-traces":
		return true
	default:
		return false
	}
}

// finishCheck enforces kind/attribute consistency after a check block
// is fully parsed: topology checks reject the metric vocabulary and
// vice versa.
func finishCheck(c *Check, seen map[string]bool, line int) error {
	if c.Kind == CheckTopology {
		for _, key := range []string{"metric", "aggregate", "aggregation", "scope", "max", "min", "window"} {
			if seen[key] {
				return fmt.Errorf("bifrost: line %d: attribute %q is not valid on topology check %q", line, key, c.Name)
			}
		}
		return nil
	}
	for _, key := range []string{"heuristic", "max-ranked-changes", "min-traces", "allow"} {
		if seen[key] {
			return fmt.Errorf("bifrost: line %d: attribute %q on check %q requires kind = topology", line, key, c.Name)
		}
	}
	return nil
}

// parseAllow parses `allow = class, class, ...` on a topology check.
func (p *parser) parseAllow(c *Check) error {
	p.next() // "allow"
	if _, err := p.expect(tokAssign, "="); err != nil {
		return err
	}
	for {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokString {
			return fmt.Errorf("bifrost: line %d: expected change class, got %s", t.line, t)
		}
		if _, err := health.ParseChangeType(t.text); err != nil {
			return fmt.Errorf("bifrost: line %d: %w", t.line, err)
		}
		c.Allow = append(c.Allow, t.text)
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

func applyCheckAttr(c *Check, key string, val token) error {
	switch key {
	case "kind":
		switch strings.ToLower(val.text) {
		case "metric":
			c.Kind = CheckMetric
		case "topology":
			c.Kind = CheckTopology
		default:
			return fmt.Errorf("bifrost: line %d: unknown check kind %q (metric or topology)", val.line, val.text)
		}
	case "heuristic":
		if _, err := health.HeuristicByName(val.text); err != nil {
			return fmt.Errorf("bifrost: line %d: %w", val.line, err)
		}
		c.Heuristic = val.text
	case "max-ranked-changes":
		n, err := parseIntTok(val)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("bifrost: line %d: max-ranked-changes must be >= 0", val.line)
		}
		c.MaxChanges = n
	case "min-traces":
		n, err := parseIntTok(val)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("bifrost: line %d: min-traces must be >= 0", val.line)
		}
		c.MinTraces = n
	case "metric":
		c.Metric = val.text
	case "aggregate", "aggregation":
		agg, err := metrics.ParseAggregation(val.text)
		if err != nil {
			return fmt.Errorf("bifrost: line %d: %w", val.line, err)
		}
		c.Aggregation = agg
	case "max":
		v, err := parseFloatTok(val)
		if err != nil {
			return err
		}
		c.Threshold = v
		c.Upper = true
	case "min":
		v, err := parseFloatTok(val)
		if err != nil {
			return err
		}
		c.Threshold = v
		c.Upper = false
	case "window":
		d, err := parseDurationTok(val)
		if err != nil {
			return err
		}
		c.Window = d
	case "interval":
		d, err := parseDurationTok(val)
		if err != nil {
			return err
		}
		c.Interval = d
	case "failures":
		n, err := parseIntTok(val)
		if err != nil {
			return err
		}
		c.FailuresToTrip = n
	case "scope":
		switch strings.ToLower(val.text) {
		case "candidate":
			c.Scope = ScopeCandidate
		case "baseline":
			c.Scope = ScopeBaseline
		case "relative":
			c.Scope = ScopeRelative
		default:
			return fmt.Errorf("bifrost: line %d: unknown check scope %q", val.line, val.text)
		}
	default:
		return fmt.Errorf("bifrost: line %d: unknown check attribute %q", val.line, key)
	}
	return nil
}

// parseChain parses `on <outcome> -> <action>`.
func (p *parser) parseChain(phase *Phase) error {
	p.next() // "on"
	outcome, err := p.expect(tokIdent, "outcome (success/failure/inconclusive)")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow, "->"); err != nil {
		return err
	}
	action, err := p.expect(tokIdent, "action")
	if err != nil {
		return err
	}
	var tr Transition
	switch action.text {
	case "rollback":
		tr = Transition{Kind: TransitionRollback}
	case "promote":
		tr = Transition{Kind: TransitionPromote}
	case "retry":
		tr = Transition{Kind: TransitionRetry}
	case "next":
		tr = Transition{Kind: TransitionNext}
	case "abort":
		tr = Transition{Kind: TransitionAbort}
	case "phase":
		target, err := p.expect(tokString, "phase name string")
		if err != nil {
			return err
		}
		tr = Transition{Kind: TransitionGoto, Target: target.text}
	default:
		return fmt.Errorf("bifrost: line %d: unknown action %q", action.line, action.text)
	}
	switch outcome.text {
	case "success":
		phase.OnSuccess = tr
	case "failure":
		phase.OnFailure = tr
	case "inconclusive":
		phase.OnInconclusive = tr
	default:
		return fmt.Errorf("bifrost: line %d: unknown outcome %q", outcome.line, outcome.text)
	}
	return nil
}

// parseSteps parses `steps = 25%, 50%, 100%`.
func (p *parser) parseSteps(phase *Phase) error {
	p.next() // "steps"
	if _, err := p.expect(tokAssign, "="); err != nil {
		return err
	}
	for {
		val, err := p.expect(tokNumber, "step percentage")
		if err != nil {
			return err
		}
		w, err := parsePercent(val)
		if err != nil {
			return err
		}
		phase.Traffic.Steps = append(phase.Traffic.Steps, w)
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// parseGroups parses `groups = eu, beta`.
func (p *parser) parseGroups(phase *Phase) error {
	p.next() // "groups"
	if _, err := p.expect(tokAssign, "="); err != nil {
		return err
	}
	for {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokString {
			return fmt.Errorf("bifrost: line %d: expected group name, got %s", t.line, t)
		}
		phase.Traffic.Groups = append(phase.Traffic.Groups, expmodel.UserGroup(t.text))
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// --- value parsing ---

func parsePercent(t token) (float64, error) {
	if t.kind != tokNumber {
		return 0, fmt.Errorf("bifrost: line %d: expected percentage, got %s", t.line, t)
	}
	text := t.text
	isPercent := strings.HasSuffix(text, "%")
	text = strings.TrimSuffix(text, "%")
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("bifrost: line %d: bad number %q", t.line, t.text)
	}
	if isPercent {
		v /= 100
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("bifrost: line %d: traffic share %q outside [0%%,100%%]", t.line, t.text)
	}
	return v, nil
}

func parseDurationTok(t token) (time.Duration, error) {
	if t.kind != tokNumber {
		return 0, fmt.Errorf("bifrost: line %d: expected duration, got %s", t.line, t)
	}
	d, err := time.ParseDuration(t.text)
	if err != nil {
		return 0, fmt.Errorf("bifrost: line %d: bad duration %q", t.line, t.text)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bifrost: line %d: duration %q must be positive", t.line, t.text)
	}
	return d, nil
}

func parseIntTok(t token) (int, error) {
	if t.kind != tokNumber {
		return 0, fmt.Errorf("bifrost: line %d: expected integer, got %s", t.line, t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("bifrost: line %d: bad integer %q", t.line, t.text)
	}
	return n, nil
}

func parseFloatTok(t token) (float64, error) {
	if t.kind != tokNumber {
		return 0, fmt.Errorf("bifrost: line %d: expected number, got %s", t.line, t)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.text, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bifrost: line %d: bad number %q", t.line, t.text)
	}
	if strings.HasSuffix(t.text, "%") {
		v /= 100
	}
	return v, nil
}
