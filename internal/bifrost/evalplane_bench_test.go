package bifrost

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"contexp/internal/clock"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// BenchmarkEvalPlane measures one evaluation-plane tick at scale: 200
// concurrent runs, each with four due checks — a staged ladder of
// thresholds over one shared latency signal (p95), the common
// multi-threshold guard shape — over per-run series that concurrent
// RecordBatch writers are hammering throughout the timed region.
//
//   - serial: the pre-dispatcher reference plane — every run's checks
//     evaluated one after another, no pool, no coalescing: four full
//     quantile-sketch merges per run per tick.
//   - dispatch: the shipped architecture — each run's batch evaluated
//     on its own (persistent) run goroutine, fanned out through the
//     bounded pool with the single-flight tick cache coalescing the
//     shared signal to one sketch merge per run per tick.
//
// The dispatch/serial ratio is the evaluation-throughput speedup the
// performance docs quote (coalescing alone on one core; the pool adds
// near-linear scaling on top with more cores). The bench gate tracks
// the dispatch arm.
func BenchmarkEvalPlane(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchEvalPlane(b, Config{EvalWorkers: 1, DisableEvalCache: true}, false)
	})
	b.Run("dispatch", func(b *testing.B) {
		benchEvalPlane(b, Config{}, true)
	})
}

const (
	evalPlaneRuns   = 200
	evalPlaneWindow = 240 * time.Second
)

func benchEvalPlane(b *testing.B, cfg Config, concurrentRuns bool) {
	store := metrics.NewStore(0)
	cfg.Clock = clock.Real{}
	cfg.Table = router.NewTable()
	cfg.Store = store
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}

	// 200 runs over distinct per-service series.
	runs := make([]*Run, evalPlaneRuns)
	scopes := make([]metrics.Scope, evalPlaneRuns)
	now := time.Now()
	for i := range runs {
		svc := fmt.Sprintf("svc-%03d", i)
		s := &Strategy{
			Name: "strat-" + svc, Service: svc, Baseline: "v1", Candidate: "v2",
			Phases: []Phase{{
				Name: "canary", Traffic: TrafficSpec{CandidateWeight: 0.1},
				Duration: time.Minute,
				// A threshold ladder over one shared p95 signal: four
				// checks, one distinct query key.
				Checks: []Check{
					{Name: "p95-soft", Metric: "response_time", Aggregation: metrics.AggP95,
						Upper: true, Threshold: 1e9, Interval: evalPlaneWindow},
					{Name: "p95-warn", Metric: "response_time", Aggregation: metrics.AggP95,
						Upper: true, Threshold: 1e8, Interval: evalPlaneWindow},
					{Name: "p95-hard", Metric: "response_time", Aggregation: metrics.AggP95,
						Upper: true, Threshold: 1e7, Interval: evalPlaneWindow},
					{Name: "p95-trip", Metric: "response_time", Aggregation: metrics.AggP95,
						Upper: true, Threshold: 1e6, Interval: evalPlaneWindow},
				},
			}},
		}
		runs[i] = &Run{strategy: s, engine: eng}
		scopes[i] = metrics.Scope{Service: svc, Version: "v2"}
		// A full window of sealed per-second history ending now, so every
		// query has data regardless of how long the timed region runs.
		for ts := -245; ts <= 0; ts++ {
			store.Record("response_time", scopes[i], now.Add(time.Duration(ts)*time.Second), 1+float64(ts&63))
		}
	}

	// Concurrent write pressure on the very series the checks read.
	// Writers pace themselves so they model a steady ingestion stream
	// rather than monopolizing the benchmark machine's cores.
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			batch := make([]metrics.Sample, 64)
			for i := w; ; i += 2 {
				select {
				case <-stop:
					return
				default:
				}
				scope := scopes[i%evalPlaneRuns]
				at := time.Now()
				for k := range batch {
					batch[k] = metrics.Sample{Metric: "response_time", Scope: scope, At: at, Value: 1 + float64(k&63)}
				}
				store.RecordBatch(batch)
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	// Per-run check slices built once, like observe()'s reused buffers.
	checkSets := make([][]*Check, len(runs))
	for i, r := range runs {
		p := &r.strategy.Phases[0]
		checks := make([]*Check, len(p.Checks))
		for ci := range p.Checks {
			checks[ci] = &p.Checks[ci]
		}
		checkSets[i] = checks
	}
	tickOne := func(i int, tick time.Time) {
		r := runs[i]
		r.evalBatch(&r.strategy.Phases[0], checkSets[i], tick)
	}

	var (
		tickCh chan time.Time
		doneWg sync.WaitGroup
	)
	if concurrentRuns {
		// Persistent per-run goroutines, like the engine's run loops:
		// each receives the tick instant and evaluates its own batch.
		tickCh = make(chan time.Time)
		var lifeWg sync.WaitGroup
		for i := range runs {
			lifeWg.Add(1)
			go func(i int) {
				defer lifeWg.Done()
				for tick := range tickCh {
					tickOne(i, tick)
					doneWg.Done()
				}
			}(i)
		}
		defer lifeWg.Wait()
		defer close(tickCh)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := time.Now()
		if concurrentRuns {
			doneWg.Add(len(runs))
			for range runs {
				tickCh <- tick
			}
			doneWg.Wait()
		} else {
			for i := range runs {
				tickOne(i, tick)
			}
		}
	}
	b.StopTimer()
	close(stop)
	writers.Wait()
}
