package bifrost

import (
	"strings"
	"sync"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/health"
	"contexp/internal/journal"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

// fakeAssessor is a scripted TopologyAssessor: it serves a fixed
// verdict and records the lifecycle calls the engine makes.
type fakeAssessor struct {
	mu         sync.Mutex
	registered []string
	frozen     []string
	verdict    health.LiveVerdict
}

func (f *fakeAssessor) Register(run, service, baseline, candidate string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.registered = append(f.registered, run+":"+service+":"+baseline+":"+candidate)
}

func (f *fakeAssessor) Freeze(run string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozen = append(f.frozen, run)
}

func (f *fakeAssessor) Verdict(run, heuristic string) (*health.LiveVerdict, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.verdict
	v.Run = run
	return &v, nil
}

func topoEngine(t *testing.T, assessor TopologyAssessor) *Engine {
	t.Helper()
	store := metrics.NewStore(0)
	// Healthy metrics so metric checks (if any) would pass.
	now := time.Now()
	for d := -time.Minute; d <= time.Minute; d += 100 * time.Millisecond {
		store.Record("response_time", metrics.Scope{Service: "rec", Version: "v2"}, now.Add(d), 10)
		store.Record("requests", metrics.Scope{Service: "rec", Version: "v2"}, now.Add(d), 1)
	}
	engine, err := NewEngine(Config{
		Table:                router.NewTable(),
		Store:                store,
		DefaultCheckInterval: 30 * time.Millisecond,
		Topology:             assessor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func topoStrategy(allow []string, maxChanges, minTraces int) *Strategy {
	return &Strategy{
		Name: "topo-run", Service: "rec", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic: TrafficSpec{CandidateWeight: 0.2}, Duration: time.Second,
			Checks: []Check{{
				Name: "structure", Kind: CheckTopology,
				Allow: allow, MaxChanges: maxChanges, MinTraces: minTraces,
				Interval: 30 * time.Millisecond,
			}},
			OnSuccess:      Transition{Kind: TransitionPromote},
			OnInconclusive: Transition{Kind: TransitionAbort},
		}},
	}
}

func TestTopologyCheckTripsPhase(t *testing.T) {
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		Heuristic: "subtree-weighted", BaselineTraces: 50, CandidateTraces: 50,
		Changes: []health.RankedChange{
			{Class: "call-new-endpoint", Edge: "rec@v2:GET /r -> billing@v1:POST /charge", Score: 4.2},
			{Class: "updated-callee-version", Edge: "fe@v1:GET / -> rec@v2:GET /r", Score: 1.1},
		},
	}}
	engine := topoEngine(t, assessor)
	// Version updates are expected during a rollout; the new billing
	// dependency is not.
	run, err := engine.Launch(topoStrategy([]string{"updated-callee-version"}, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	if got := run.Status(); got != StatusRolledBack {
		t.Fatalf("status = %v, want rolled-back", got)
	}
	var verdictEvents int
	var detail string
	for _, ev := range run.Events() {
		if ev.Type == EventTopologyVerdict {
			verdictEvents++
			detail = ev.Detail
		}
	}
	if verdictEvents == 0 {
		t.Fatal("no topology-verdict events recorded")
	}
	if !strings.Contains(detail, "call-new-endpoint") || !strings.Contains(detail, "disallowed=1") {
		t.Errorf("verdict detail = %q", detail)
	}
	// Lifecycle: registered at launch, frozen at finish.
	assessor.mu.Lock()
	defer assessor.mu.Unlock()
	if len(assessor.registered) != 1 || assessor.registered[0] != "topo-run:rec:v1:v2" {
		t.Errorf("registered = %v", assessor.registered)
	}
	if len(assessor.frozen) != 1 || assessor.frozen[0] != "topo-run" {
		t.Errorf("frozen = %v", assessor.frozen)
	}
}

func TestTopologyCheckPassesWhenChangesAllowed(t *testing.T) {
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		Heuristic: "subtree-weighted", BaselineTraces: 50, CandidateTraces: 50,
		Changes: []health.RankedChange{
			{Class: "updated-callee-version", Edge: "fe@v1:GET / -> rec@v2:GET /r", Score: 1.1},
		},
	}}
	engine := topoEngine(t, assessor)
	run, err := engine.Launch(topoStrategy([]string{"updated-callee-version"}, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	if got := run.Status(); got != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded", got)
	}
	// The phase concluded at its natural end: the conclude-time
	// topology evaluation must be journaled like the interval ones.
	events := run.Events()
	var lastVerdictIdx, outcomeIdx = -1, -1
	for i, ev := range events {
		switch ev.Type {
		case EventTopologyVerdict:
			lastVerdictIdx = i
		case EventPhaseOutcome:
			outcomeIdx = i
		}
	}
	if lastVerdictIdx == -1 || outcomeIdx == -1 || lastVerdictIdx != outcomeIdx-1 {
		t.Errorf("phase outcome at %d not preceded by its conclude-time verdict (last verdict at %d)",
			outcomeIdx, lastVerdictIdx)
	}
}

// TestRecoverSettlesTopologyRunWithoutAssessor mirrors Launch's guard:
// a journaled in-flight topology-gated run recovered into an engine
// with no assessor is settled with a clear reason, not left spinning
// inconclusive.
func TestRecoverSettlesTopologyRunWithoutAssessor(t *testing.T) {
	jnl := journal.NewMemory()
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		Heuristic: "subtree-weighted", // trace-starved: stays inconclusive
	}}
	store := metrics.NewStore(0)
	engine1, err := NewEngine(Config{
		Table: router.NewTable(), Store: store, Journal: jnl, Topology: assessor,
		DefaultCheckInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := topoStrategy(nil, 0, 10)
	s.Phases[0].Duration = 30 * time.Second // stays in flight
	run, err := engine1.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(run.Events()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("run produced no events")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// "Restart" without live tracing.
	engine2, err := NewEngine(Config{Table: router.NewTable(), Store: store, Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := engine2.Recover(jnl)
	if err != nil {
		t.Fatal(err)
	}
	run.Abort() // let engine1's goroutine go
	if rep.Settled != 1 {
		t.Fatalf("report = %+v, want 1 settled", rep)
	}
	recovered, ok := engine2.Get("topo-run")
	if !ok {
		t.Fatal("run not recovered")
	}
	if got := recovered.Status(); got != StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	if !strings.Contains(rep.Runs[0].Action, "topology assessor") {
		t.Errorf("action = %q, want assessor explanation", rep.Runs[0].Action)
	}
}

func TestTopologyCheckMaxRankedChangesBudget(t *testing.T) {
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		Heuristic: "subtree-weighted", BaselineTraces: 50, CandidateTraces: 50,
		Changes: []health.RankedChange{
			{Class: "call-existing-endpoint", Edge: "a -> b", Score: 2},
			{Class: "remove-call", Edge: "a -> c", Score: 1},
		},
	}}
	engine := topoEngine(t, assessor)
	// Two disallowed changes within a budget of two: passes.
	run, err := engine.Launch(topoStrategy(nil, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	if got := run.Status(); got != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded (2 changes <= budget 2)", got)
	}
}

func TestTopologyCheckInconclusiveWithoutTraces(t *testing.T) {
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		Heuristic: "subtree-weighted", BaselineTraces: 3, CandidateTraces: 0,
		Changes: []health.RankedChange{
			{Class: "call-new-endpoint", Edge: "a -> b", Score: 9},
		},
	}}
	engine := topoEngine(t, assessor)
	run, err := engine.Launch(topoStrategy(nil, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	// Inconclusive transition is abort in topoStrategy: too little
	// evidence never trips a rollback.
	if got := run.Status(); got != StatusAborted {
		t.Fatalf("status = %v, want aborted (inconclusive)", got)
	}
	for _, ev := range run.Events() {
		if ev.Type == EventTopologyVerdict && ev.Outcome == OutcomeFail {
			t.Fatalf("trace-starved check failed instead of inconclusive: %+v", ev)
		}
	}
}

func TestLaunchRejectsTopologyChecksWithoutAssessor(t *testing.T) {
	store := metrics.NewStore(0)
	engine, err := NewEngine(Config{Table: router.NewTable(), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Launch(topoStrategy(nil, 0, 1))
	if err == nil || !strings.Contains(err.Error(), "no topology assessor") {
		t.Fatalf("err = %v, want topology-assessor rejection", err)
	}
}

// TestMetricOnlyStrategyUnaffectedByAssessor pins the refactor: the
// evaluator seam must leave metric checks byte-identical in behavior.
func TestMetricOnlyStrategyUnaffectedByAssessor(t *testing.T) {
	assessor := &fakeAssessor{verdict: health.LiveVerdict{
		BaselineTraces: 50, CandidateTraces: 50,
		Changes: []health.RankedChange{{Class: "call-new-endpoint", Edge: "a -> b", Score: 9}},
	}}
	engine := topoEngine(t, assessor)
	s := &Strategy{
		Name: "metric-run", Service: "rec", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "canary", Practice: expmodel.PracticeCanary,
			Traffic: TrafficSpec{CandidateWeight: 0.2}, Duration: 500 * time.Millisecond,
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 1000,
				Interval: 30 * time.Millisecond, Window: time.Minute,
			}},
			OnSuccess:      Transition{Kind: TransitionPromote},
			OnInconclusive: Transition{Kind: TransitionAbort},
		}},
	}
	run, err := engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	// The assessor's scripted structural regression must not leak into
	// a strategy that never asked for topology checks.
	if got := run.Status(); got != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded", got)
	}
	for _, ev := range run.Events() {
		if ev.Type == EventTopologyVerdict {
			t.Fatal("metric-only run recorded a topology verdict")
		}
	}
}
