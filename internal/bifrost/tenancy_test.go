package bifrost

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// Tenancy threading through the engine and scheduler: run keys, service
// conflicts, and scheduler budgets are all tenant-scoped, while the
// default tenant keeps the exact pre-tenancy behavior.

func TestLaunchServiceConflictIsTenantScoped(t *testing.T) {
	h := newHarness(t)

	a := holdStrategy("exp", "catalog", time.Hour)
	a.Tenant = "acme"
	b := holdStrategy("exp", "catalog", time.Hour)
	b.Tenant = "beta"

	ra, err := h.engine.Launch(a)
	if err != nil {
		t.Fatal(err)
	}
	// Same run name, same service name — different tenant. No cross-talk.
	rb, err := h.engine.Launch(b)
	if err != nil {
		t.Fatalf("tenant beta blocked by tenant acme's run: %v", err)
	}
	if ra.Status() != StatusRunning || rb.Status() != StatusRunning {
		t.Fatalf("both tenants' runs should be live: %v / %v", ra.Status(), rb.Status())
	}

	// Within one tenant the service conflict still holds.
	c := holdStrategy("other", "catalog", time.Hour)
	c.Tenant = "acme"
	if _, err := h.engine.Launch(c); !errors.Is(err, ErrServiceBusy) {
		t.Fatalf("same-tenant same-service launch: want ErrServiceBusy, got %v", err)
	}

	// Runs key by tenant-qualified name; bare names never reach into a
	// tenant's namespace.
	if _, ok := h.engine.Get("acme/exp"); !ok {
		t.Fatal("acme/exp should resolve")
	}
	if _, ok := h.engine.Get("exp"); ok {
		t.Fatal("bare name should not resolve a tenant's run")
	}

	// The routing table is tenant-namespaced too: each tenant got its
	// own qualified service entry.
	services := h.table.Services()
	joined := strings.Join(services, ",")
	if !strings.Contains(joined, "acme/catalog") || !strings.Contains(joined, "beta/catalog") {
		t.Fatalf("routing table should hold per-tenant services, got %v", services)
	}
}

func TestSchedulerBudgetsArePerTenant(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, func(cfg *SchedulerConfig) {
		cfg.MaxConcurrent = 1
	})

	a := holdStrategy("exp-a", "catalog", time.Hour)
	a.Tenant = "acme"
	b := holdStrategy("exp-b", "checkout", time.Hour)
	b.Tenant = "beta"

	ra, err := sched.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Queued {
		t.Fatal("acme's first submission should launch")
	}
	// Tenant beta has its own max-concurrent budget: acme's live run
	// does not consume it.
	rb, err := sched.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Queued {
		t.Fatalf("beta should launch despite acme's live run: %+v", rb.Entry)
	}

	// acme's second submission hits acme's own ceiling and queues.
	c := holdStrategy("exp-c", "payments", time.Hour)
	c.Tenant = "acme"
	rc, err := sched.Submit(c)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Queued {
		t.Fatal("acme's second submission should queue on its own max-concurrent budget")
	}
}
