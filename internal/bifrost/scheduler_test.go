package bifrost

import (
	"errors"
	"strings"
	"testing"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/journal"
)

// newScheduler wires a scheduler to a harness engine with test-sized
// planning parameters.
func (h *harness) newScheduler(t *testing.T, jnl journal.Journal, mutate func(*SchedulerConfig)) *Scheduler {
	t.Helper()
	cfg := SchedulerConfig{
		Engine:         h.engine,
		Journal:        jnl,
		SlotDuration:   10 * time.Second,
		HorizonSlots:   720,
		OptimizeBudget: 500,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sched, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// rebasedStrategy is twoPhaseStrategy with its identity rebased.
func rebasedStrategy(name, service string) *Strategy {
	s := twoPhaseStrategy()
	s.Name, s.Service = name, service
	return s
}

// holdStrategy runs one canary phase for `hold` with no checks, so it
// stays running until the sim clock passes the phase end.
func holdStrategy(name, service string, hold time.Duration) *Strategy {
	return &Strategy{
		Name: name, Service: service, Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "hold", Practice: expmodel.PracticeCanary,
			Traffic:   TrafficSpec{CandidateWeight: 0.1},
			Duration:  hold,
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
}

// waitFor drives the sim clock until cond holds or a real deadline
// passes.
func (h *harness) waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		if d, ok := h.sim.NextDeadline(); ok {
			h.sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestSchedulerDisjointServicesRunConcurrently(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil)

	a, err := sched.Submit(holdStrategy("exp-a", "catalog", time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Submit(holdStrategy("exp-b", "checkout", time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if a.Queued || a.Run == nil {
		t.Fatalf("first submission should launch immediately: %+v", a)
	}
	if b.Queued || b.Run == nil {
		t.Fatalf("disjoint-service submission should launch immediately: %+v", b)
	}
	if a.Run.Status() != StatusRunning || b.Run.Status() != StatusRunning {
		t.Fatalf("both runs should be live: %v / %v", a.Run.Status(), b.Run.Status())
	}
	snap := sched.Snapshot()
	if len(snap.Running) != 2 || len(snap.Queue) != 0 {
		t.Fatalf("snapshot: %d running, %d queued", len(snap.Running), len(snap.Queue))
	}
}

func TestSchedulerSameServiceSerializes(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	sched := h.newScheduler(t, jnl, nil)

	first, err := sched.Submit(holdStrategy("first", "catalog", 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if first.Queued {
		t.Fatal("first submission should launch")
	}
	second, err := sched.Submit(holdStrategy("second", "catalog", 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Queued {
		t.Fatal("same-service submission should queue")
	}
	if !strings.Contains(second.Entry.Reason, "service") {
		t.Errorf("queue reason should name the service conflict, got %q", second.Entry.Reason)
	}
	if second.Entry.PlannedStart.IsZero() {
		t.Error("queued entry should carry a projected start from the optimizer")
	}
	if !sched.Queued("second") {
		t.Error("Queued should report the waiting entry")
	}

	// The first run concluding frees the service; the queue pump
	// launches the second without any new submission.
	h.waitFor(t, "first run to finish", func() bool {
		return first.Run.Status() != StatusRunning
	})
	h.waitFor(t, "second run to launch", func() bool {
		run, ok := h.engine.Get("second")
		return ok && run.Status() == StatusRunning
	})
	if sched.Queued("second") {
		t.Error("launched entry should have left the queue")
	}

	// The journal carries the full lifecycle in order: queued →
	// scheduled → launched. (Launch publishes the run before appending
	// its journal record, so poll.)
	want := []EventType{EventRunQueued, EventRunScheduled, EventRunLaunched}
	lifecycle := func() []EventType {
		var got []EventType
		_ = jnl.Replay(func(rec []byte) error {
			wr, err := decodeRecord(rec)
			if err != nil {
				return err
			}
			if wr.Run == "second" &&
				(queueLifecycle(wr.Type) || wr.Type == EventRunLaunched) {
				got = append(got, wr.Type)
			}
			return nil
		})
		return got
	}
	h.waitFor(t, "lifecycle to reach the journal", func() bool {
		return len(lifecycle()) >= len(want)
	})
	got := lifecycle()
	if len(got) != len(want) {
		t.Fatalf("lifecycle = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lifecycle[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSchedulerMaxConcurrentGate(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, func(c *SchedulerConfig) { c.MaxConcurrent = 1 })

	if res, err := sched.Submit(holdStrategy("one", "catalog", time.Hour)); err != nil || res.Queued {
		t.Fatalf("first: %+v, %v", res, err)
	}
	res, err := sched.Submit(holdStrategy("two", "checkout", time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued || !strings.Contains(res.Entry.Reason, "max-concurrent") {
		t.Fatalf("second should queue on max-concurrent, got %+v", res)
	}
}

func TestSchedulerCapacityGate(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil) // capacity 0.8

	big := holdStrategy("big", "catalog", time.Hour)
	big.Phases[0].Traffic.CandidateWeight = 0.5
	if res, err := sched.Submit(big); err != nil || res.Queued {
		t.Fatalf("big: %+v, %v", res, err)
	}
	big2 := holdStrategy("big2", "checkout", time.Hour)
	big2.Phases[0].Traffic.CandidateWeight = 0.5
	res, err := sched.Submit(big2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued || !strings.Contains(res.Entry.Reason, "capacity") {
		t.Fatalf("second big strategy should queue on capacity, got %+v", res)
	}

	// A strategy that alone exceeds the ceiling is rejected outright.
	huge := holdStrategy("huge", "search", time.Hour)
	huge.Phases[0].Traffic.CandidateWeight = 0.9
	if _, err := sched.Submit(huge); err == nil {
		t.Fatal("over-capacity strategy should be rejected at admission")
	}
}

func TestSchedulerUserGroupConflict(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil)

	withGroups := func(name, service string) *Strategy {
		s := holdStrategy(name, service, time.Hour)
		s.Phases[0].Traffic.Groups = []expmodel.UserGroup{"beta"}
		return s
	}
	if res, err := sched.Submit(withGroups("g1", "catalog")); err != nil || res.Queued {
		t.Fatalf("g1: %+v, %v", res, err)
	}
	// Different service, same user group: a user must not be in two
	// experiments at once.
	res, err := sched.Submit(withGroups("g2", "checkout"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued || !strings.Contains(res.Entry.Reason, "beta") {
		t.Fatalf("overlapping-group strategy should queue, got %+v", res)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	sched := h.newScheduler(t, jnl, nil)

	if _, err := sched.Submit(holdStrategy("live", "catalog", time.Hour)); err != nil {
		t.Fatal(err)
	}
	if res, err := sched.Submit(holdStrategy("waiting", "catalog", time.Hour)); err != nil || !res.Queued {
		t.Fatalf("waiting: %+v, %v", res, err)
	}
	if err := sched.Cancel("waiting"); err != nil {
		t.Fatal(err)
	}
	if sched.Queued("waiting") {
		t.Error("canceled entry still queued")
	}
	if err := sched.Cancel("waiting"); err == nil {
		t.Error("second cancel should fail")
	}
	// A canceled entry is consumed: RecoverQueue must not resurrect it.
	pending, errs := RecoverQueue(jnl)
	if len(errs) > 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	for _, p := range pending {
		if p.Name == "waiting" {
			t.Error("canceled submission recovered as pending")
		}
	}
}

func TestSchedulerDuplicateNames(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil)

	if _, err := sched.Submit(holdStrategy("dup", "catalog", time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(holdStrategy("dup", "checkout", time.Hour)); err == nil {
		t.Fatal("running-name resubmission should fail")
	}
	if _, err := sched.Submit(holdStrategy("held", "catalog", time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(holdStrategy("held", "search", time.Hour)); err == nil {
		t.Fatal("queued-name resubmission should fail")
	}
}

func TestEngineRejectsSameServiceLaunch(t *testing.T) {
	h := newHarness(t)
	if _, err := h.engine.Launch(holdStrategy("one", "catalog", time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, err := h.engine.Launch(holdStrategy("two", "catalog", time.Hour))
	if !errors.Is(err, ErrServiceBusy) {
		t.Fatalf("same-service launch error = %v, want ErrServiceBusy", err)
	}
	// A different service is fine.
	if _, err := h.engine.Launch(holdStrategy("three", "checkout", time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Once the blocking run finishes, the service frees up.
	run, _ := h.engine.Get("one")
	run.Abort()
	h.waitFor(t, "one to finish", func() bool { return run.Status() != StatusRunning })
	if _, err := h.engine.Launch(holdStrategy("two", "catalog", time.Hour)); err != nil {
		t.Fatalf("launch after service freed: %v", err)
	}
}

func TestSchedulerQueueRecovery(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	sched := h.newScheduler(t, jnl, nil)

	if res, err := sched.Submit(holdStrategy("blocker", "catalog", time.Hour)); err != nil || res.Queued {
		t.Fatalf("blocker: %+v, %v", res, err)
	}
	if res, err := sched.Submit(holdStrategy("pending", "catalog", time.Hour)); err != nil || !res.Queued {
		t.Fatalf("pending: %+v, %v", res, err)
	}

	// "Crash": rebuild engine + scheduler from the journal snapshot.
	snap := jnl.Snapshot()
	h2 := newJournalHarness(t, snap)
	eng2 := h2.engine
	if _, err := eng2.Recover(snap); err != nil {
		t.Fatal(err)
	}
	pending, errs := RecoverQueue(snap)
	if len(errs) > 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(pending) != 1 || pending[0].Name != "pending" {
		t.Fatalf("pending = %+v, want just \"pending\"", pending)
	}

	sched2 := h2.newScheduler(t, snap, nil)
	sched2.Restore(pending)

	// The blocker was recovered as a live run on "catalog", so the
	// restored entry must stay queued behind it...
	snap2 := sched2.Snapshot()
	if len(snap2.Queue) != 1 || snap2.Queue[0].Name != "pending" || !snap2.Queue[0].Recovered {
		t.Fatalf("restored queue = %+v", snap2.Queue)
	}
	// ...until the blocker concludes, when the pump launches it. The
	// recovered blocker is not scheduler-tracked, so completion is
	// noticed on the next queue-affecting event; nudge with a pump via
	// Cancel of a throwaway submission? No: recovered runs finish and
	// the scheduler rechecks conflicts through the engine on submit.
	blocker, ok := eng2.Get("blocker")
	if !ok {
		t.Fatal("blocker not recovered")
	}
	blocker.Abort()
	h2.waitFor(t, "blocker to finish", func() bool { return blocker.Status() != StatusRunning })
	sched2.Pump()
	h2.waitFor(t, "pending to launch", func() bool {
		run, ok := eng2.Get("pending")
		return ok && run.Status() == StatusRunning
	})

	_ = sched // first scheduler intentionally abandoned with its engine
}

func TestSchedulerBlockedByUntrackedEngineRun(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil)

	// A run launched around the scheduler (demo, library users) still
	// owns its service: the engine-side guard rejects the scheduler's
	// launch and the entry stays queued.
	if _, err := h.engine.Launch(holdStrategy("outsider", "catalog", time.Hour)); err != nil {
		t.Fatal(err)
	}
	res, err := sched.Submit(holdStrategy("insider", "catalog", time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued {
		t.Fatal("submission conflicting with an untracked run should queue")
	}
	outsider, _ := h.engine.Get("outsider")
	outsider.Abort()
	h.waitFor(t, "outsider to finish", func() bool { return outsider.Status() != StatusRunning })
	sched.Pump()
	h.waitFor(t, "insider to launch", func() bool {
		run, ok := h.engine.Get("insider")
		return ok && run.Status() == StatusRunning
	})
}

func TestCompactJournalKeepsPendingQueueRecords(t *testing.T) {
	jnl := journal.NewMemory()
	h := newJournalHarness(t, jnl)
	sched := h.newScheduler(t, jnl, nil)

	// consumed: queued, then launched (conflict-free).
	if res, err := sched.Submit(holdStrategy("consumed", "catalog", time.Hour)); err != nil || res.Queued {
		t.Fatalf("consumed: %+v, %v", res, err)
	}
	// pending: queued behind consumed.
	if res, err := sched.Submit(holdStrategy("pending", "catalog", time.Hour)); err != nil || !res.Queued {
		t.Fatalf("pending: %+v, %v", res, err)
	}
	// dropped: queued then canceled.
	if res, err := sched.Submit(holdStrategy("dropped", "catalog", time.Hour)); err != nil || !res.Queued {
		t.Fatalf("dropped: %+v, %v", res, err)
	}
	if err := sched.Cancel("dropped"); err != nil {
		t.Fatal(err)
	}

	if err := CompactJournal(jnl); err != nil {
		t.Fatal(err)
	}
	counts := map[string]map[EventType]int{}
	if err := jnl.Replay(func(rec []byte) error {
		wr, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		if counts[wr.Run] == nil {
			counts[wr.Run] = map[EventType]int{}
		}
		counts[wr.Run][wr.Type]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if counts["consumed"][EventRunQueued] != 0 {
		t.Error("consumed submission's queue records should be compacted away")
	}
	if counts["consumed"][EventRunLaunched] != 1 {
		t.Error("consumed submission's run records must survive")
	}
	if counts["pending"][EventRunQueued] != 1 {
		t.Error("pending submission's queued record must survive compaction")
	}
	if len(counts["dropped"]) != 0 {
		t.Errorf("canceled submission should be fully compacted, got %v", counts["dropped"])
	}

	// And the compacted journal still recovers the pending entry.
	pending, errs := RecoverQueue(jnl)
	if len(errs) > 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if len(pending) != 1 || pending[0].Name != "pending" {
		t.Fatalf("pending after compaction = %+v", pending)
	}
}

func TestSchedulerPlanProjectsQueue(t *testing.T) {
	h := newHarness(t)
	sched := h.newScheduler(t, nil, nil)

	// 60s hold = 6 slots at the 10s test slot duration.
	if res, err := sched.Submit(holdStrategy("live", "catalog", 60*time.Second)); err != nil || res.Queued {
		t.Fatalf("live: %+v, %v", res, err)
	}
	res, err := sched.Submit(holdStrategy("next", "catalog", 60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Queued {
		t.Fatal("same-service submission should queue")
	}
	// The optimizer must project "next" to start at or after the live
	// run's estimated end (slot 6).
	if res.Entry.PlannedStart.Before(t0.Add(60 * time.Second)) {
		t.Errorf("planned start %v is inside the live run's window", res.Entry.PlannedStart)
	}
	snap := sched.Snapshot()
	if !snap.PlanValid {
		t.Error("plan over one frozen run and one pending entry should be valid")
	}
	gantt := sched.Gantt(64)
	if !strings.Contains(gantt, "live") || !strings.Contains(gantt, "next") {
		t.Errorf("gantt should chart both experiments:\n%s", gantt)
	}
}

func TestSchedulerMetricsSeededRunsConclude(t *testing.T) {
	// End-to-end through the scheduler: a healthy strategy submitted via
	// Submit promotes exactly as one launched directly on the engine.
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 3*time.Minute, 50)
	h.seedMetrics("requests", "catalog", "v2", "", 3*time.Minute, 1)
	sched := h.newScheduler(t, nil, nil)

	res, err := sched.Submit(rebasedStrategy("promoting", "catalog"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued {
		t.Fatal("should launch immediately")
	}
	h.drive(t, res.Run)
	if res.Run.Status() != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded", res.Run.Status())
	}
	h.waitFor(t, "scheduler to drop the finished run", func() bool {
		return len(sched.Snapshot().Running) == 0
	})
}
