package bifrost

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/journal"
)

// Scheduler sits between strategy submission and Engine.Launch: the
// live counterpart of Fenrir's offline planning. Submissions become
// queue entries; entries whose conflict footprint (service ownership,
// explicit user groups, aggregate candidate-traffic capacity,
// max-concurrency) is clear launch immediately, the rest wait in the
// queue. Every queue-affecting event — a submission, a run finishing
// (early or not), a cancellation — triggers a pump: launchable entries
// launch, and the remaining queue is re-placed on the planning horizon
// by the genetic optimizer (warm-started through fenrir.Reevaluate) so
// operators always see a projected start for everything that waits.
//
// Queue state is event-sourced through the engine's journal:
// EventRunQueued (carrying the strategy DSL) on admission,
// EventRunScheduled when an entry is handed to Engine.Launch, and
// EventRunDequeued on cancellation. RecoverQueue replays those records
// so a daemon restart restores still-pending submissions (see
// docs/SCHEDULING.md).
type Scheduler struct {
	cfg   SchedulerConfig
	epoch time.Time // slot 0 of the planning horizon

	mu      sync.Mutex
	queue   []*queueEntry
	running map[string]*liveRun
	plan    *Plan
	planner planner
	recent  []QueueEvent
	closed  bool

	version  atomic.Uint64
	launched atomic.Int64
	dequeued atomic.Int64
	// journalErrs counts queue lifecycle records that failed to reach
	// the journal (the in-memory queue keeps working).
	journalErrs atomic.Int64
}

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Engine launches scheduled strategies (required).
	Engine *Engine
	// Journal receives queue lifecycle records. Nil keeps queue state in
	// memory only (no restart recovery). Normally the engine's journal.
	Journal journal.Journal
	// MaxConcurrent bounds simultaneously enacting runs (default 4).
	MaxConcurrent int
	// Capacity bounds the aggregate peak candidate-traffic share of
	// concurrently enacting runs, reserving a control population
	// (default 0.8).
	Capacity float64
	// SlotDuration is the planning granularity (default 30s).
	SlotDuration time.Duration
	// HorizonSlots is the planning horizon length (default 2880 slots =
	// 24h at the default granularity). The horizon re-anchors when the
	// current slot outgrows it.
	HorizonSlots int
	// OptimizeBudget is the fitness-evaluation budget per replanning
	// round (default 3000).
	OptimizeBudget int
	// Seed makes planning deterministic (default 1).
	Seed int64
}

func (c *SchedulerConfig) withDefaults() (SchedulerConfig, error) {
	cfg := *c
	if cfg.Engine == nil {
		return cfg, errors.New("bifrost: scheduler requires an engine")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.Capacity <= 0 || cfg.Capacity > 1 {
		if cfg.Capacity != 0 {
			return cfg, fmt.Errorf("bifrost: scheduler capacity %v outside (0,1]", cfg.Capacity)
		}
		cfg.Capacity = 0.8
	}
	if cfg.SlotDuration <= 0 {
		cfg.SlotDuration = 30 * time.Second
	}
	if cfg.HorizonSlots <= 4 {
		cfg.HorizonSlots = 2880
	}
	if cfg.OptimizeBudget <= 0 {
		cfg.OptimizeBudget = 3000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg, nil
}

// queueEntry is one pending submission.
type queueEntry struct {
	strategy  *Strategy
	groups    []expmodel.UserGroup
	share     float64
	slots     int
	queuedAt  time.Time
	recovered bool
	reason    string // why the entry is still waiting
	// scheduledJournaled guards the run-scheduled record: a launch that
	// the engine rejects (an untracked run raced the footprint check)
	// leaves the entry queued, and its retries must not append the
	// record again.
	scheduledJournaled bool
}

// liveRun is one run the scheduler launched (or adopted) and tracks
// until completion.
type liveRun struct {
	run       *Run
	service   string
	groups    []expmodel.UserGroup
	share     float64
	startedAt time.Time // wall-clock launch (or adoption) time
	start     int       // launch slot
	estEnd    int       // estimated exclusive end slot
}

// QueueEvent is one queue lifecycle event kept for observability (the
// schedule SSE stream and /v1/schedule expose the recent tail).
type QueueEvent struct {
	At     time.Time `json:"at"`
	Type   EventType `json:"type"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

const maxRecentQueueEvents = 64

// NewScheduler creates a Scheduler bound to an engine.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     full,
		epoch:   full.Engine.cfg.Clock.Now(),
		running: make(map[string]*liveRun),
		planner: planner{
			slotDur:  full.SlotDuration,
			horizon:  full.HorizonSlots,
			capacity: full.Capacity,
			budget:   full.OptimizeBudget,
			seed:     full.Seed,
		},
	}
	return s, nil
}

// now returns the engine clock's current time.
func (s *Scheduler) now() time.Time { return s.cfg.Engine.cfg.Clock.Now() }

// slotAt maps a time onto the planning horizon, re-anchoring the epoch
// (and dropping warm-start state) when the horizon is outgrown. Caller
// holds s.mu.
func (s *Scheduler) slotAt(t time.Time) int {
	slot := int(t.Sub(s.epoch) / s.cfg.SlotDuration)
	if slot < 0 {
		return 0
	}
	if slot >= s.cfg.HorizonSlots/2 {
		// Re-anchor: shift the epoch to now so the horizon always has
		// room ahead, and restate running runs' rectangles relative to
		// the new origin.
		s.epoch = t
		for _, lr := range s.running {
			remaining := lr.estEnd - slot
			if remaining < 1 {
				remaining = 1
			}
			lr.start = 0
			lr.estEnd = remaining
		}
		// The old plan's slot numbers are meaningless under the new
		// epoch; drop it (and the warm-start state) until the next pump
		// replans.
		s.plan = nil
		s.planner.Reset()
		slot = 0
	}
	return slot
}

// slotTime is the inverse mapping. Caller holds s.mu.
func (s *Scheduler) slotTime(slot int) time.Time {
	return s.epoch.Add(time.Duration(slot) * s.cfg.SlotDuration)
}

// SubmitResult reports what Submit did with a strategy.
type SubmitResult struct {
	// Run is the live run when the strategy launched immediately.
	Run *Run
	// Queued is true when the strategy is waiting in the queue.
	Queued bool
	// Entry is the queue view of the submission (set when Queued).
	Entry QueueEntryView
}

// Submit admits a strategy: it validates, journals the queued event,
// and pumps the queue — a conflict-free submission launches before
// Submit returns, a conflicting one waits.
func (s *Scheduler) Submit(strategy *Strategy) (SubmitResult, error) {
	if err := strategy.Validate(); err != nil {
		return SubmitResult{}, err
	}
	share := peakShare(strategy)
	if share > s.cfg.Capacity {
		return SubmitResult{}, fmt.Errorf(
			"bifrost: strategy %q peaks at %.0f%% candidate traffic, above the scheduler capacity %.0f%%",
			strategy.Name, share*100, s.cfg.Capacity*100)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SubmitResult{}, errors.New("bifrost: scheduler is closed")
	}
	for _, qe := range s.queue {
		if qe.strategy.RunKey() == strategy.RunKey() {
			return SubmitResult{}, fmt.Errorf("bifrost: strategy %q is already queued", strategy.Name)
		}
	}
	if run, ok := s.cfg.Engine.Get(strategy.RunKey()); ok && run.Status() == StatusRunning {
		return SubmitResult{}, fmt.Errorf("bifrost: strategy %q is already running", strategy.Name)
	}

	now := s.now()
	est := estimateDuration(strategy)
	entry := &queueEntry{
		strategy: strategy,
		groups:   conflictGroups(strategy),
		share:    share,
		slots:    s.planner.durationSlots(est),
		queuedAt: now,
	}
	s.journalQueueEvent(Event{At: now, Type: EventRunQueued,
		Detail: fmt.Sprintf("service=%s share=%.0f%% est=%s",
			strategy.Service, share*100, est)},
		strategy, WriteDSL(strategy))
	s.queue = append(s.queue, entry)
	s.pumpLocked()

	if lr, ok := s.running[strategy.RunKey()]; ok {
		return SubmitResult{Run: lr.run}, nil
	}
	return SubmitResult{Queued: true, Entry: s.entryView(entry)}, nil
}

// Restore re-enqueues submissions recovered from the journal (see
// RecoverQueue). The queued records already exist in the journal, so
// restoring journals nothing new. Call before serving traffic; the
// restored entries launch as soon as their conflicts clear.
func (s *Scheduler) Restore(pending []PendingSubmission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range pending {
		dup := false
		for _, qe := range s.queue {
			if qe.strategy.RunKey() == p.Name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.queue = append(s.queue, &queueEntry{
			strategy:  p.Strategy,
			groups:    conflictGroups(p.Strategy),
			share:     peakShare(p.Strategy),
			slots:     s.planner.durationSlots(estimateDuration(p.Strategy)),
			queuedAt:  p.QueuedAt,
			recovered: true,
		})
	}
	s.pumpLocked()
}

// Cancel withdraws a queued submission before it launches, by its
// tenant-qualified name. It does not touch live runs (use Run.Abort
// for those).
func (s *Scheduler) Cancel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, qe := range s.queue {
		if qe.strategy.RunKey() != name {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.journalQueueEvent(Event{At: s.now(), Type: EventRunDequeued,
			Detail: "canceled by operator"}, qe.strategy, "")
		s.dequeued.Add(1)
		s.pumpLocked()
		return nil
	}
	return fmt.Errorf("bifrost: no queued strategy named %q", name)
}

// Queued reports whether a submission with this tenant-qualified name
// is waiting.
func (s *Scheduler) Queued(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, qe := range s.queue {
		if qe.strategy.RunKey() == name {
			return true
		}
	}
	return false
}

// Close stops admission. Queued entries stay queued; live runs keep
// running.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Version increments on every observable queue or plan change; pollers
// (the schedule SSE stream) re-snapshot when it moves.
func (s *Scheduler) Version() uint64 { return s.version.Load() }

// JournalErrors reports queue lifecycle records that failed to append.
func (s *Scheduler) JournalErrors() int64 { return s.journalErrs.Load() }

// Launches reports how many queue entries this scheduler handed to
// Engine.Launch.
func (s *Scheduler) Launches() int64 { return s.launched.Load() }

// Dequeues reports how many queued submissions were withdrawn before
// launching.
func (s *Scheduler) Dequeues() int64 { return s.dequeued.Load() }

// --- pump: the scheduling loop body ---

// Pump re-evaluates the queue against current engine state. The
// scheduler pumps itself on submissions, cancellations, and tracked-run
// completions; callers (contexpd after recovery, tests) can force a
// pass after changing engine state behind the scheduler's back.
func (s *Scheduler) Pump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pumpLocked()
}

// pumpLocked launches every queue entry whose conflicts are clear, then
// replans the remainder. Caller holds s.mu.
func (s *Scheduler) pumpLocked() {
	defer s.version.Add(1)
	now := s.now()
	slot := s.slotAt(now)

	// Drop finished runs from the running set (their completion watcher
	// normally does this, but submissions may race it).
	for name, lr := range s.running {
		if lr.run.Status() != StatusRunning {
			delete(s.running, name)
		}
	}
	s.adoptRunningLocked(slot)

	// Launch pass: queue order, later entries may overtake blocked ones
	// (disjoint-service submissions enact concurrently).
	remaining := s.queue[:0]
	for _, qe := range s.queue {
		reason := s.blockReasonLocked(qe)
		if reason != "" {
			qe.reason = reason
			remaining = append(remaining, qe)
			continue
		}
		if err := s.launchLocked(qe, now, slot); err != nil {
			// Engine-side rejection (e.g. a run launched around the
			// scheduler owns the service): keep the entry queued and try
			// again on the next pump.
			qe.reason = err.Error()
			remaining = append(remaining, qe)
		}
	}
	s.queue = remaining

	// Replan the projection for whatever still waits.
	s.replanLocked(slot)
}

// adoptRunningLocked tracks live engine runs the scheduler did not
// launch itself — recovered after a crash, or launched around the
// scheduler by library users and the demo. Adoption gives them a
// conflict footprint (so queued entries wait behind them) and a
// completion watcher (so their finish pumps the queue). It reports
// whether anything was adopted. Caller holds s.mu.
func (s *Scheduler) adoptRunningLocked(slot int) bool {
	adopted := false
	for _, run := range s.cfg.Engine.Runs() {
		if run.Status() != StatusRunning {
			continue
		}
		st := run.Strategy()
		if _, ok := s.running[st.RunKey()]; ok {
			continue
		}
		adopted = true
		s.running[st.RunKey()] = &liveRun{
			run:       run,
			service:   st.RouteService(),
			groups:    conflictGroups(st),
			share:     peakShare(st),
			startedAt: s.now(),
			start:     slot,
			estEnd:    slot + s.planner.durationSlots(estimateDuration(st)),
		}
		name := st.RunKey()
		go func() {
			<-run.Done()
			s.onRunDone(name)
		}()
	}
	return adopted
}

// blockReasonLocked explains why an entry cannot launch right now
// ("" when it can). Concurrency and candidate-traffic capacity are
// budgeted per tenant — each tenant exposes its own user population,
// so one tenant's experiments must not starve another's — while the
// group-footprint conflicts below are already tenant-disjoint because
// conflictGroups qualifies every group name. Caller holds s.mu.
func (s *Scheduler) blockReasonLocked(qe *queueEntry) string {
	tenant := qe.strategy.Tenant
	live, used := 0, 0.0
	for _, lr := range s.running {
		if lr.run.strategy.Tenant != tenant {
			continue
		}
		live++
		used += lr.share
	}
	if live >= s.cfg.MaxConcurrent {
		return fmt.Sprintf("max-concurrent reached (%d)", s.cfg.MaxConcurrent)
	}
	if used+qe.share > s.cfg.Capacity+1e-9 {
		return fmt.Sprintf("capacity: %.0f%% in use, needs %.0f%%, ceiling %.0f%%",
			used*100, qe.share*100, s.cfg.Capacity*100)
	}
	for _, lr := range s.running {
		for _, g := range qe.groups {
			for _, rg := range lr.groups {
				if g == rg {
					if g == serviceGroup(lr.service) {
						return fmt.Sprintf("service %q busy with run %q", lr.service, lr.run.strategy.Name)
					}
					return fmt.Sprintf("user group %q held by run %q", g, lr.run.strategy.Name)
				}
			}
		}
	}
	return ""
}

// launchLocked journals the scheduled event and hands the entry to
// Engine.Launch. Caller holds s.mu.
func (s *Scheduler) launchLocked(qe *queueEntry, now time.Time, slot int) error {
	if !qe.scheduledJournaled {
		qe.scheduledJournaled = true
		s.journalQueueEvent(Event{At: now, Type: EventRunScheduled,
			Detail: fmt.Sprintf("slot=%d waited=%s", slot, now.Sub(qe.queuedAt).Round(time.Millisecond))},
			qe.strategy, "")
	}
	run, err := s.cfg.Engine.Launch(qe.strategy)
	if err != nil {
		return err
	}
	lr := &liveRun{
		run:       run,
		service:   qe.strategy.RouteService(),
		groups:    qe.groups,
		share:     qe.share,
		startedAt: now,
		start:     slot,
		estEnd:    slot + qe.slots,
	}
	s.running[qe.strategy.RunKey()] = lr
	s.launched.Add(1)
	go func() {
		<-run.Done()
		s.onRunDone(qe.strategy.RunKey())
	}()
	return nil
}

// onRunDone reacts to a tracked run finishing (early, failed, or on
// schedule): free its footprint and pump the queue.
func (s *Scheduler) onRunDone(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, name)
	s.pumpLocked()
}

// replanLocked re-places the queue on the horizon. Planning failures
// are tolerated — the projection goes stale but launch gating (which
// checks actual conflicts) keeps working. Caller holds s.mu.
func (s *Scheduler) replanLocked(slot int) {
	running := make([]planRun, 0, len(s.running))
	for name, lr := range s.running {
		running = append(running, planRun{
			name: name, groups: lr.groups, share: lr.share,
			start: lr.start, estEnd: lr.estEnd,
		})
	}
	pending := make([]planPending, 0, len(s.queue))
	for _, qe := range s.queue {
		pending = append(pending, planPending{
			name: qe.strategy.RunKey(), groups: qe.groups, share: qe.share, slots: qe.slots,
		})
	}
	plan, err := s.planner.Replan(slot, running, pending)
	if err != nil {
		s.plan = nil
		return
	}
	s.plan = plan
}

// --- journaling ---

// journalQueueEvent appends one queue lifecycle record (and keeps it in
// the recent tail for observability). Queue records reuse the run-event
// wire envelope: the run name is the strategy name, and dsl (when
// non-empty) makes run-queued records self-contained the way
// run-launched records are. Caller holds s.mu.
func (s *Scheduler) journalQueueEvent(ev Event, strategy *Strategy, dsl string) {
	if s.cfg.Journal != nil {
		rec, err := encodeEvent(strategy.RunKey(), strategy.Tenant, ev, dsl, 0)
		if err == nil {
			err = s.cfg.Journal.Append(rec)
		}
		if err != nil {
			s.journalErrs.Add(1)
		}
	}
	s.recent = append(s.recent, QueueEvent{At: ev.At, Type: ev.Type, Name: strategy.RunKey(), Detail: ev.Detail})
	if len(s.recent) > maxRecentQueueEvents {
		s.recent = s.recent[len(s.recent)-maxRecentQueueEvents:]
	}
}

// --- snapshots ---

// QueueEntryView is the observable state of one queued submission.
// Name is tenant-qualified; Tenant repeats the owner for display
// (omitted for the default tenant).
type QueueEntryView struct {
	Name     string   `json:"name"`
	Tenant   string   `json:"tenant,omitempty"`
	Service  string   `json:"service"`
	Groups   []string `json:"groups,omitempty"`
	Share    float64  `json:"share"`
	Position int      `json:"position"`
	// State is "queued" until the entry launches (then it leaves the
	// queue and appears under running).
	State    string    `json:"state"`
	QueuedAt time.Time `json:"queuedAt"`
	// PlannedStart is the optimizer's projected launch time (zero when
	// the last replanning round could not place the entry).
	PlannedStart time.Time     `json:"plannedStart,omitzero"`
	EstDuration  time.Duration `json:"-"`
	EstDurationS string        `json:"estDuration"`
	Reason       string        `json:"reason,omitempty"`
	Recovered    bool          `json:"recovered,omitempty"`
}

// ScheduledRunView is the observable state of one tracked live run.
// Name is tenant-qualified; Tenant repeats the owner for display.
type ScheduledRunView struct {
	Name      string    `json:"name"`
	Tenant    string    `json:"tenant,omitempty"`
	Service   string    `json:"service"`
	Groups    []string  `json:"groups,omitempty"`
	Share     float64   `json:"share"`
	StartedAt time.Time `json:"startedAt"`
	EstEnd    time.Time `json:"estEnd"`
	Status    string    `json:"status"`
}

// ScheduleSnapshot is the full observable scheduler state.
type ScheduleSnapshot struct {
	Now           time.Time          `json:"now"`
	Slot          int                `json:"slot"`
	SlotDuration  string             `json:"slotDuration"`
	HorizonSlots  int                `json:"horizonSlots"`
	Capacity      float64            `json:"capacity"`
	MaxConcurrent int                `json:"maxConcurrent"`
	Version       uint64             `json:"version"`
	PlanFitness   float64            `json:"planFitness,omitempty"`
	PlanValid     bool               `json:"planValid"`
	Running       []ScheduledRunView `json:"running"`
	Queue         []QueueEntryView   `json:"queue"`
	Recent        []QueueEvent       `json:"recent,omitempty"`
}

// entryView renders one queue entry. Caller holds s.mu.
func (s *Scheduler) entryView(qe *queueEntry) QueueEntryView {
	v := QueueEntryView{
		Name:        qe.strategy.RunKey(),
		Tenant:      qe.strategy.Tenant,
		Service:     qe.strategy.Service,
		Share:       qe.share,
		State:       "queued",
		QueuedAt:    qe.queuedAt,
		EstDuration: time.Duration(qe.slots) * s.cfg.SlotDuration,
		Reason:      qe.reason,
		Recovered:   qe.recovered,
	}
	v.EstDurationS = v.EstDuration.String()
	for _, g := range strategyGroups(qe.strategy) {
		v.Groups = append(v.Groups, string(g))
	}
	for i, other := range s.queue {
		if other == qe {
			v.Position = i
			break
		}
	}
	if s.plan != nil {
		if start, ok := s.plan.Starts[qe.strategy.RunKey()]; ok {
			v.PlannedStart = s.slotTime(start)
		}
	}
	return v
}

// Snapshot returns the observable scheduler state. It prunes finished
// runs and adopts untracked live ones first, so the view reflects the
// engine even before the next queue-affecting event pumps.
func (s *Scheduler) Snapshot() ScheduleSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	slot := s.slotAt(now)
	changed := false
	for name, lr := range s.running {
		if lr.run.Status() != StatusRunning {
			delete(s.running, name)
			changed = true
		}
	}
	if s.adoptRunningLocked(slot) {
		changed = true
	}
	if changed {
		// Version moves on any observable change, including ones noticed
		// here rather than by a pump — the SSE stream keys off it.
		s.version.Add(1)
	}
	if s.plan == nil && (len(s.queue) > 0 || len(s.running) > 0) {
		// An epoch re-anchor dropped the plan mid-poll; rebuild the
		// projection here rather than waiting for the next queue event
		// (cheap when nothing is queued: frozen genes skip the search).
		s.replanLocked(slot)
	}
	snap := ScheduleSnapshot{
		Now:           now,
		Slot:          slot,
		SlotDuration:  s.cfg.SlotDuration.String(),
		HorizonSlots:  s.cfg.HorizonSlots,
		Capacity:      s.cfg.Capacity,
		MaxConcurrent: s.cfg.MaxConcurrent,
		Version:       s.version.Load(),
		Running:       make([]ScheduledRunView, 0, len(s.running)),
		Queue:         make([]QueueEntryView, 0, len(s.queue)),
	}
	if s.plan != nil {
		snap.PlanFitness = s.plan.Fitness
		snap.PlanValid = s.plan.Valid
	}
	for name, lr := range s.running {
		groups := make([]string, 0, len(lr.groups))
		for _, g := range strategyGroups(lr.run.strategy) {
			groups = append(groups, string(g))
		}
		snap.Running = append(snap.Running, ScheduledRunView{
			Name:      name,
			Tenant:    lr.run.strategy.Tenant,
			Service:   lr.run.strategy.Service,
			Groups:    groups,
			Share:     lr.share,
			StartedAt: lr.startedAt,
			EstEnd:    s.slotTime(lr.estEnd),
			Status:    lr.run.Status().String(),
		})
	}
	sort.Slice(snap.Running, func(i, j int) bool {
		return snap.Running[i].StartedAt.Before(snap.Running[j].StartedAt)
	})
	for _, qe := range s.queue {
		snap.Queue = append(snap.Queue, s.entryView(qe))
	}
	snap.Recent = append(snap.Recent, s.recent...)
	return snap
}

// Gantt renders the latest plan as the ASCII chart Fenrir's offline
// scheduling example prints, one row per experiment (running runs and
// queued submissions alike).
func (s *Scheduler) Gantt(width int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan == nil || len(s.plan.Problem.Experiments) == 0 {
		return "(no schedule: queue is empty)\n"
	}
	return s.plan.Problem.Gantt(s.plan.Schedule, width)
}
