package bifrost

import "testing"

func BenchmarkParseStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseStrategy(sampleDSL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteDSL(b *testing.B) {
	s, err := ParseStrategy(sampleDSL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := WriteDSL(s); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkVerifyPairwise(b *testing.B) {
	strategies := make([]*Strategy, 20)
	for i := range strategies {
		s := validStrategy()
		s.Name = s.Name + string(rune('a'+i))
		s.Service = "svc-" + string(rune('a'+i))
		strategies[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Verify(strategies); err != nil {
			b.Fatal(err)
		}
	}
}
