// Package bifrost implements the paper's execution-phase contribution
// (Chapter 4): a middleware for the automated enactment of multi-phase
// live testing strategies. A strategy chains experimentation practices
// (canary → dark launch → A/B test → gradual rollout) as phases of a
// state machine; each phase routes traffic, runs timed health checks
// against the metric store, and conditional chaining decides what
// happens next — advancing, retrying, or rolling back.
//
// Strategies are specified programmatically or in a domain-specific
// language ("experimentation-as-code", see dsl.go) and executed by the
// Engine (engine.go) on top of runtime traffic routing.
package bifrost

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"contexp/internal/expmodel"
	"contexp/internal/health"
	"contexp/internal/metrics"
	"contexp/internal/tenancy"
)

// Strategy is a multi-phase live testing strategy for one service: the
// execution model of Section 4.3.
type Strategy struct {
	// Name identifies the strategy (and its Run) within the engine.
	Name string
	// Tenant is the canonical tenant that owns the strategy ("" for the
	// default tenant). It is not part of the DSL: the control plane
	// stamps it from the authenticated principal before submission, so
	// a request body can never claim another tenant's namespace. All
	// conflict detection (run names, service ownership, scheduler
	// capacity) and metric series namespacing scope by it.
	Tenant string
	// Service is the service under experimentation.
	Service string
	// Baseline is the stable version users fall back to.
	Baseline string
	// Candidate is the experimental version.
	Candidate string
	// Phases execute in order unless transitions say otherwise. The
	// first phase is the initial state.
	Phases []Phase
}

// RunKey is the engine-wide unique key of the strategy's run: the
// tenant-qualified name. The default tenant's key is the bare name,
// so pre-tenancy journals and single-tenant deployments are unchanged.
func (s *Strategy) RunKey() string { return tenancy.Qualify(s.Tenant, s.Name) }

// RouteService is the routing-table key the strategy manipulates: the
// tenant-qualified service name. Two tenants experimenting on services
// that happen to share a name own disjoint routing entries.
func (s *Strategy) RouteService() string { return tenancy.Qualify(s.Tenant, s.Service) }

// Phase is one state of the strategy's state machine: a user-to-version
// assignment plus the checks guarding it.
type Phase struct {
	// Name identifies the phase within the strategy.
	Name string
	// Practice classifies the phase and selects its traffic semantics.
	Practice expmodel.Practice
	// Traffic configures routing while the phase is active.
	Traffic TrafficSpec
	// Duration is how long the phase observes before concluding. For
	// gradual rollouts the total duration is Steps × StepDuration
	// instead.
	Duration time.Duration
	// MinSamples is the minimum number of candidate observations the
	// primary metric needs before the phase can conclude successfully;
	// fewer means the outcome is inconclusive (the "not enough data
	// collected" re-execution trigger of Section 1.2.3).
	MinSamples int
	// Checks are evaluated on their own intervals while the phase runs
	// (Fig 4.3). A failing check concludes the phase immediately.
	Checks []Check
	// OnSuccess, OnFailure, and OnInconclusive chain the phases
	// conditionally. Zero values default to: success → next phase in
	// order (or promote at the end), failure → rollback, inconclusive
	// → retry once, then failure.
	OnSuccess      Transition
	OnFailure      Transition
	OnInconclusive Transition
	// MaxRetries bounds inconclusive re-executions (default 1).
	MaxRetries int
}

// TrafficSpec describes the routing a phase installs.
type TrafficSpec struct {
	// CandidateWeight is the share of traffic routed to the candidate
	// (canary and A/B phases).
	CandidateWeight float64
	// Mirror duplicates all baseline traffic to the candidate without
	// exposing responses (dark launches).
	Mirror bool
	// Steps is the weight sequence of a gradual rollout.
	Steps []float64
	// StepDuration is the dwell time per rollout step.
	StepDuration time.Duration
	// Groups, when non-empty, restricts the candidate to these user
	// groups via routing rules instead of a random split.
	Groups []expmodel.UserGroup
}

// TransitionKind enumerates what happens after a phase concludes.
type TransitionKind int

// Transition kinds.
const (
	// TransitionNext advances to the next phase in declaration order
	// (promoting when the concluded phase is the last).
	TransitionNext TransitionKind = iota + 1
	// TransitionGoto jumps to a named phase.
	TransitionGoto
	// TransitionRollback reroutes everything to the baseline and ends
	// the run as rolled back.
	TransitionRollback
	// TransitionPromote reroutes everything to the candidate and ends
	// the run as succeeded.
	TransitionPromote
	// TransitionRetry re-executes the concluded phase.
	TransitionRetry
	// TransitionAbort ends the run without touching routing (operator
	// takes over).
	TransitionAbort
)

// String names the kind.
func (k TransitionKind) String() string {
	switch k {
	case TransitionNext:
		return "next"
	case TransitionGoto:
		return "goto"
	case TransitionRollback:
		return "rollback"
	case TransitionPromote:
		return "promote"
	case TransitionRetry:
		return "retry"
	case TransitionAbort:
		return "abort"
	default:
		return fmt.Sprintf("transition(%d)", int(k))
	}
}

// Transition is one conditional-chaining edge.
type Transition struct {
	Kind TransitionKind
	// Target is the phase name for TransitionGoto.
	Target string
}

// CheckKind selects the signal source a check evaluates: the scalar
// metric store or the live topology assessment. The zero value is
// CheckMetric, so every pre-existing check keeps its meaning.
type CheckKind int

// Check kinds.
const (
	// CheckMetric evaluates an aggregated metric series against a
	// threshold (the original Chapter 4 check).
	CheckMetric CheckKind = iota
	// CheckTopology evaluates the Chapter 5 structural comparison: the
	// classified changes between the run's baseline and candidate
	// interaction graphs, ranked by an impact heuristic.
	CheckTopology
)

// String names the kind (the DSL's `kind` attribute values).
func (k CheckKind) String() string {
	switch k {
	case CheckMetric:
		return "metric"
	case CheckTopology:
		return "topology"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// CheckScope selects whose metrics a check reads.
type CheckScope int

// Check scopes.
const (
	// ScopeCandidate queries the candidate version's series (default).
	ScopeCandidate CheckScope = iota + 1
	// ScopeBaseline queries the baseline version's series.
	ScopeBaseline
	// ScopeRelative compares candidate against baseline: the check
	// passes when candidate <= Threshold × baseline (for upper-bound
	// checks) — the "apples to apples comparison" of Section 2.6.1.
	ScopeRelative
)

// Check is one timed health criterion (Fig 4.3). Kind selects what it
// evaluates: metric checks read the metric store, topology checks read
// the live interaction-graph comparison.
type Check struct {
	// Name identifies the check in events and reports.
	Name string
	// Kind selects the signal source (default CheckMetric).
	Kind CheckKind
	// Metric is the series name in the metric store (e.g.
	// "response_time"). Metric checks only.
	Metric string
	// Aggregation reduces the window (mean, p95, ...).
	Aggregation metrics.Aggregation
	// Scope selects candidate, baseline, or relative evaluation.
	Scope CheckScope
	// Upper, when true, requires value <= Threshold; otherwise
	// value >= Threshold.
	Upper bool
	// Threshold is the bound (or the relative factor for ScopeRelative).
	Threshold float64
	// Window is how far back observations are read (default: Interval).
	Window time.Duration
	// Interval is how often the check runs (default: engine default).
	Interval time.Duration
	// FailuresToTrip is how many consecutive failing evaluations
	// conclude the phase as failed (default 1: the paper's immediate
	// rollback on spotted irregularities).
	FailuresToTrip int

	// Topology-check attributes (Kind == CheckTopology).

	// Heuristic names the ranking heuristic ("" = the default,
	// subtree-weighted). See health.HeuristicNames.
	Heuristic string
	// MaxChanges is the `max-ranked-changes` bound: the check fails once
	// more than this many disallowed changes are observed (default 0:
	// any disallowed structural change trips the check).
	MaxChanges int
	// MinTraces is how many traces each variant's graph needs before the
	// check is decisive; fewer means inconclusive (default 1).
	MinTraces int
	// Allow lists change classes that do not count against MaxChanges —
	// expected structure shifts such as "updated-callee-version" during
	// a version rollout.
	Allow []string
}

// Outcome of a check evaluation or a phase.
type Outcome int

// Outcomes.
const (
	OutcomePass Outcome = iota + 1
	OutcomeFail
	// OutcomeInconclusive means not enough data was available.
	OutcomeInconclusive
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeFail:
		return "fail"
	case OutcomeInconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Validate checks the strategy for structural soundness: phases exist,
// names are unique, transitions resolve, traffic specs fit their
// practices, checks are well-formed.
func (s *Strategy) Validate() error {
	if s.Name == "" {
		return errors.New("bifrost: strategy without name")
	}
	if s.Service == "" || s.Baseline == "" || s.Candidate == "" {
		return fmt.Errorf("bifrost: %s: service, baseline, and candidate are required", s.Name)
	}
	if s.Baseline == s.Candidate {
		return fmt.Errorf("bifrost: %s: baseline and candidate are both %q", s.Name, s.Baseline)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("bifrost: %s: no phases", s.Name)
	}
	names := make(map[string]bool, len(s.Phases))
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("bifrost: %s: phase %d without name", s.Name, i)
		}
		if names[p.Name] {
			return fmt.Errorf("bifrost: %s: duplicate phase %q", s.Name, p.Name)
		}
		names[p.Name] = true
		if err := p.validate(s.Name); err != nil {
			return err
		}
	}
	// Transitions resolve.
	for i := range s.Phases {
		p := &s.Phases[i]
		for _, tr := range []Transition{p.OnSuccess, p.OnFailure, p.OnInconclusive} {
			if tr.Kind == TransitionGoto && !names[tr.Target] {
				return fmt.Errorf("bifrost: %s: phase %q transitions to unknown phase %q", s.Name, p.Name, tr.Target)
			}
		}
	}
	return nil
}

func (p *Phase) validate(strategy string) error {
	if p.Practice == 0 {
		return fmt.Errorf("bifrost: %s/%s: practice is required", strategy, p.Name)
	}
	t := &p.Traffic
	switch p.Practice {
	case expmodel.PracticeGradualRollout:
		if len(t.Steps) == 0 {
			return fmt.Errorf("bifrost: %s/%s: gradual rollout without steps", strategy, p.Name)
		}
		if t.StepDuration <= 0 {
			return fmt.Errorf("bifrost: %s/%s: gradual rollout without step duration", strategy, p.Name)
		}
		prev := 0.0
		for _, w := range t.Steps {
			if w <= prev || w > 1 {
				return fmt.Errorf("bifrost: %s/%s: rollout steps must increase within (0,1], got %v", strategy, p.Name, t.Steps)
			}
			prev = w
		}
	case expmodel.PracticeDarkLaunch:
		if !t.Mirror {
			return fmt.Errorf("bifrost: %s/%s: dark launch requires mirroring", strategy, p.Name)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("bifrost: %s/%s: duration is required", strategy, p.Name)
		}
	default:
		if t.CandidateWeight < 0 || t.CandidateWeight > 1 {
			return fmt.Errorf("bifrost: %s/%s: candidate weight %v outside [0,1]", strategy, p.Name, t.CandidateWeight)
		}
		if t.CandidateWeight == 0 && len(t.Groups) == 0 {
			return fmt.Errorf("bifrost: %s/%s: phase routes no traffic to the candidate", strategy, p.Name)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("bifrost: %s/%s: duration is required", strategy, p.Name)
		}
	}
	for i := range p.Checks {
		c := &p.Checks[i]
		if c.Name == "" {
			return fmt.Errorf("bifrost: %s/%s: check %d without name", strategy, p.Name, i)
		}
		switch c.Kind {
		case CheckMetric:
			if c.Metric == "" {
				return fmt.Errorf("bifrost: %s/%s/%s: metric is required", strategy, p.Name, c.Name)
			}
			if c.Aggregation == 0 {
				return fmt.Errorf("bifrost: %s/%s/%s: aggregation is required", strategy, p.Name, c.Name)
			}
			if c.Scope == ScopeRelative && c.Threshold <= 0 {
				return fmt.Errorf("bifrost: %s/%s/%s: relative checks need a positive factor", strategy, p.Name, c.Name)
			}
		case CheckTopology:
			if c.Metric != "" || c.Aggregation != 0 {
				return fmt.Errorf("bifrost: %s/%s/%s: topology checks take no metric or aggregation", strategy, p.Name, c.Name)
			}
			if _, err := health.HeuristicByName(c.Heuristic); err != nil {
				return fmt.Errorf("bifrost: %s/%s/%s: %w", strategy, p.Name, c.Name, err)
			}
			if c.MaxChanges < 0 {
				return fmt.Errorf("bifrost: %s/%s/%s: max-ranked-changes must be >= 0", strategy, p.Name, c.Name)
			}
			if c.MinTraces < 0 {
				return fmt.Errorf("bifrost: %s/%s/%s: min-traces must be >= 0", strategy, p.Name, c.Name)
			}
			for _, cls := range c.Allow {
				if _, err := health.ParseChangeType(cls); err != nil {
					return fmt.Errorf("bifrost: %s/%s/%s: %w", strategy, p.Name, c.Name, err)
				}
			}
		default:
			return fmt.Errorf("bifrost: %s/%s/%s: unknown check kind %v", strategy, p.Name, c.Name, c.Kind)
		}
	}
	return nil
}

// hasTopologyChecks reports whether any phase gates on the live
// topology assessment, which requires an engine with a configured
// TopologyAssessor.
func (s *Strategy) hasTopologyChecks() bool {
	for i := range s.Phases {
		for j := range s.Phases[i].Checks {
			if s.Phases[i].Checks[j].Kind == CheckTopology {
				return true
			}
		}
	}
	return false
}

// effective transition resolution -------------------------------------------------

func (p *Phase) successTransition() Transition {
	if p.OnSuccess.Kind == 0 {
		return Transition{Kind: TransitionNext}
	}
	return p.OnSuccess
}

func (p *Phase) failureTransition() Transition {
	if p.OnFailure.Kind == 0 {
		return Transition{Kind: TransitionRollback}
	}
	return p.OnFailure
}

func (p *Phase) inconclusiveTransition() Transition {
	if p.OnInconclusive.Kind == 0 {
		return Transition{Kind: TransitionRetry}
	}
	return p.OnInconclusive
}

func (p *Phase) maxRetries() int {
	if p.MaxRetries <= 0 {
		return 1
	}
	return p.MaxRetries
}

// phaseIndex returns the index of a named phase, or -1.
func (s *Strategy) phaseIndex(name string) int {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			return i
		}
	}
	return -1
}

// StateMachine renders the strategy's states and transitions (the
// visualization of Fig 4.2, in text form, used by expctl).
func (s *Strategy) StateMachine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy %q on %s (%s -> %s)\n", s.Name, s.Service, s.Baseline, s.Candidate)
	for i := range s.Phases {
		p := &s.Phases[i]
		fmt.Fprintf(&b, "  [%d] %s (%s)", i, p.Name, p.Practice)
		switch p.Practice {
		case expmodel.PracticeGradualRollout:
			fmt.Fprintf(&b, " steps=%v step=%s", p.Traffic.Steps, p.Traffic.StepDuration)
		case expmodel.PracticeDarkLaunch:
			fmt.Fprintf(&b, " mirror duration=%s", p.Duration)
		default:
			fmt.Fprintf(&b, " weight=%.0f%% duration=%s", p.Traffic.CandidateWeight*100, p.Duration)
		}
		b.WriteString("\n")
		for _, c := range p.Checks {
			if c.Kind == CheckTopology {
				heuristic := c.Heuristic
				if heuristic == "" {
					heuristic = "subtree-weighted"
				}
				fmt.Fprintf(&b, "      check %s: topology(%s) ranked-changes <= %d",
					c.Name, heuristic, c.MaxChanges)
				if len(c.Allow) > 0 {
					fmt.Fprintf(&b, " allow %s", strings.Join(c.Allow, ","))
				}
				fmt.Fprintf(&b, " every %s\n", c.Interval)
				continue
			}
			op := ">="
			if c.Upper {
				op = "<="
			}
			scope := ""
			switch c.Scope {
			case ScopeBaseline:
				scope = " on baseline"
			case ScopeRelative:
				scope = " vs baseline"
			}
			fmt.Fprintf(&b, "      check %s: %s(%s) %s %g%s every %s\n",
				c.Name, c.Aggregation, c.Metric, op, c.Threshold, scope, c.Interval)
		}
		fmt.Fprintf(&b, "      success -> %s", describeTransition(p.successTransition()))
		fmt.Fprintf(&b, " | failure -> %s", describeTransition(p.failureTransition()))
		fmt.Fprintf(&b, " | inconclusive -> %s\n", describeTransition(p.inconclusiveTransition()))
	}
	return b.String()
}

func describeTransition(t Transition) string {
	if t.Kind == TransitionGoto {
		return "goto " + t.Target
	}
	return t.Kind.String()
}
