package bifrost

import (
	"strings"
	"testing"
	"time"

	"contexp/internal/clock"
	"contexp/internal/expmodel"
	"contexp/internal/metrics"
	"contexp/internal/router"
)

var t0 = time.Date(2017, 12, 11, 9, 0, 0, 0, time.UTC)

// harness bundles an engine on a simulated clock.
type harness struct {
	sim    *clock.Sim
	table  *router.Table
	store  *metrics.Store
	engine *Engine
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{
		sim:   clock.NewSim(t0),
		table: router.NewTable(),
		store: metrics.NewStore(0),
	}
	eng, err := NewEngine(Config{Clock: h.sim, Table: h.table, Store: h.store})
	if err != nil {
		t.Fatal(err)
	}
	h.engine = eng
	return h
}

// seedMetrics records `value` for (metric, service, version, variant)
// once per second over the given virtual span starting at t0.
func (h *harness) seedMetrics(metric, service, version, variant string, span time.Duration, value float64) {
	scope := metrics.Scope{Service: service, Version: version, Variant: variant}
	for ts := time.Duration(0); ts <= span; ts += time.Second {
		h.store.Record(metric, scope, t0.Add(ts), value)
	}
}

// drive advances the simulated clock until the run finishes or the
// real-time deadline passes.
func (h *harness) drive(t *testing.T, run *Run) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-run.Done():
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("run did not finish; status=%v phase=%q events=%d",
				run.Status(), run.CurrentPhase(), len(run.Events()))
		}
		if d, ok := h.sim.NextDeadline(); ok {
			h.sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func twoPhaseStrategy() *Strategy {
	return &Strategy{
		Name: "happy", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{
			{
				Name: "canary", Practice: expmodel.PracticeCanary,
				Traffic:  TrafficSpec{CandidateWeight: 0.05},
				Duration: time.Minute,
				Checks: []Check{{
					Name: "latency", Metric: "response_time",
					Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
					Interval: 10 * time.Second,
				}},
			},
			{
				Name: "ab", Practice: expmodel.PracticeABTest,
				Traffic:  TrafficSpec{CandidateWeight: 0.5},
				Duration: time.Minute,
				Checks: []Check{{
					Name: "latency", Metric: "response_time",
					Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
					Interval: 10 * time.Second,
				}},
				OnSuccess: Transition{Kind: TransitionPromote},
			},
		},
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{Store: metrics.NewStore(0)}); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := NewEngine(Config{Table: router.NewTable()}); err == nil {
		t.Error("missing store should fail")
	}
}

func TestHappyPathPromotion(t *testing.T) {
	h := newHarness(t)
	// Healthy metrics on the candidate for the whole run.
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)

	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v; events: %+v", run.Status(), run.Events())
	}
	// Routing ends 100% on the candidate.
	route, err := h.table.Route("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backends) != 1 || route.Backends[0].Version != "v2" {
		t.Errorf("final route = %+v", route.Backends)
	}
	// Audit trail covers both phases.
	var entered []string
	for _, ev := range run.Events() {
		if ev.Type == EventPhaseEntered {
			entered = append(entered, ev.Phase)
		}
	}
	if len(entered) != 2 || entered[0] != "canary" || entered[1] != "ab" {
		t.Errorf("phases entered = %v", entered)
	}
}

func TestFailingCheckRollsBack(t *testing.T) {
	h := newHarness(t)
	// Candidate is unhealthy: latency way above threshold.
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 500)

	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusRolledBack {
		t.Fatalf("status = %v", run.Status())
	}
	route, _ := h.table.Route("catalog")
	if len(route.Backends) != 1 || route.Backends[0].Version != "v1" {
		t.Errorf("rollback route = %+v", route.Backends)
	}
	// The failure concluded the phase early: well before the 60s phase end
	// plus the second phase.
	elapsed := h.sim.Now().Sub(t0)
	if elapsed > 30*time.Second {
		t.Errorf("rollback took %v of virtual time, expected immediate trip", elapsed)
	}
	// No second phase was entered.
	for _, ev := range run.Events() {
		if ev.Type == EventPhaseEntered && ev.Phase == "ab" {
			t.Error("failing canary still advanced to ab phase")
		}
	}
}

func TestFailuresToTripRequiresConsecutive(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].OnSuccess = Transition{Kind: TransitionPromote}
	s.Phases[0].Checks[0].FailuresToTrip = 3
	// Unhealthy only during the first ~15s: two evaluations fail, then
	// recovery. 3 consecutive failures are never reached.
	scope := metrics.Scope{Service: "catalog", Version: "v2"}
	for ts := time.Duration(0); ts <= 2*time.Minute; ts += time.Second {
		v := 50.0
		if ts < 15*time.Second {
			v = 500
		}
		h.store.Record("response_time", scope, t0.Add(ts), v)
	}
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v, want succeeded (trip threshold not reached)", run.Status())
	}
}

func TestInconclusiveRetriesThenFails(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].MaxRetries = 2
	// No metrics at all: every evaluation is inconclusive.
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusRolledBack {
		t.Fatalf("status = %v, want rolled-back after retries exhausted", run.Status())
	}
	// The phase was entered 1 + 2 retries = 3 times.
	var entered int
	for _, ev := range run.Events() {
		if ev.Type == EventPhaseEntered {
			entered++
		}
	}
	if entered != 3 {
		t.Errorf("phase entered %d times, want 3", entered)
	}
}

func TestMinSamplesGate(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].MinSamples = 1000
	s.Phases[0].MaxRetries = 1
	s.Phases[0].OnInconclusive = Transition{Kind: TransitionAbort}
	// Healthy but sparse: only ~60 samples over the minute.
	h.seedMetrics("response_time", "catalog", "v2", "", 2*time.Minute, 50)
	h.seedMetrics("requests", "catalog", "v2", "", 2*time.Minute, 1)

	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted via inconclusive transition", run.Status())
	}
}

func TestGradualRolloutSteps(t *testing.T) {
	h := newHarness(t)
	s := &Strategy{
		Name: "rollout", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "rollout", Practice: expmodel.PracticeGradualRollout,
			Traffic: TrafficSpec{
				Steps:        []float64{0.25, 0.5, 1.0},
				StepDuration: 30 * time.Second,
			},
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
				Interval: 10 * time.Second,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
	h.seedMetrics("response_time", "catalog", "v2", "", 5*time.Minute, 50)
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
	var steps []string
	for _, ev := range run.Events() {
		if ev.Type == EventRolloutStep {
			steps = append(steps, ev.Detail)
		}
	}
	want := []string{"weight=25%", "weight=50%", "weight=100%"}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %q, want %q", i, steps[i], want[i])
		}
	}
}

func TestDarkLaunchRoutingAndScope(t *testing.T) {
	h := newHarness(t)
	s := &Strategy{
		Name: "dark", Service: "catalog", Baseline: "v1", Candidate: "v2",
		Phases: []Phase{{
			Name: "dark", Practice: expmodel.PracticeDarkLaunch,
			Traffic:  TrafficSpec{Mirror: true},
			Duration: time.Minute,
			Checks: []Check{{
				Name: "latency", Metric: "response_time",
				Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
				Interval: 10 * time.Second,
			}},
			OnSuccess: Transition{Kind: TransitionPromote},
		}},
	}
	// Metrics live under the "dark" variant, as microsim records mirrors.
	h.seedMetrics("response_time", "catalog", "v2", "dark", 5*time.Minute, 50)

	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	// While running, the route must keep users on baseline and mirror to
	// v2. The phase's routing lands asynchronously after launch.
	var route router.Route
	deadline := time.Now().Add(5 * time.Second)
	for {
		route, _ = h.table.Route("catalog")
		if len(route.Mirrors) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror route never installed: %+v", route)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if route.Mirrors[0] != "v2" {
		t.Errorf("mirrors during dark launch = %v", route.Mirrors)
	}
	if route.Backends[0].Version != "v1" || route.Backends[0].Weight != 1 {
		t.Errorf("backends during dark launch = %+v", route.Backends)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
}

func TestRelativeCheck(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	s.Phases = s.Phases[:1]
	s.Phases[0].OnSuccess = Transition{Kind: TransitionPromote}
	s.Phases[0].Checks = []Check{{
		Name: "regression", Metric: "response_time",
		Aggregation: metrics.AggMean, Scope: ScopeRelative,
		Upper: true, Threshold: 1.25,
		Interval: 10 * time.Second,
	}}
	// Candidate 20% slower than baseline: within the 25% budget.
	h.seedMetrics("response_time", "catalog", "v1", "", 5*time.Minute, 100)
	h.seedMetrics("response_time", "catalog", "v2", "", 5*time.Minute, 120)

	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v (20%% regression within 25%% budget)", run.Status())
	}

	// Second run: candidate 50% slower -> rollback.
	h2 := newHarness(t)
	h2.seedMetrics("response_time", "catalog", "v1", "", 5*time.Minute, 100)
	h2.seedMetrics("response_time", "catalog", "v2", "", 5*time.Minute, 150)
	run2, err := h2.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h2.drive(t, run2)
	if run2.Status() != StatusRolledBack {
		t.Fatalf("status = %v (50%% regression should fail)", run2.Status())
	}
}

func TestLaunchErrors(t *testing.T) {
	h := newHarness(t)
	if _, err := h.engine.Launch(&Strategy{}); err == nil {
		t.Error("invalid strategy should fail")
	}
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.engine.Launch(twoPhaseStrategy()); err == nil {
		t.Error("duplicate live strategy should fail")
	}
	h.drive(t, run)
	// After completion the name can be reused.
	if _, err := h.engine.Launch(twoPhaseStrategy()); err != nil {
		t.Errorf("relaunch after completion failed: %v", err)
	}
}

func TestAbort(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	run.Abort()
	run.Abort() // idempotent
	h.drive(t, run)
	if run.Status() != StatusAborted {
		t.Fatalf("status = %v", run.Status())
	}
}

func TestEngineAccessors(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := h.engine.Get("happy")
	if !ok || got != run {
		t.Error("Get failed")
	}
	if _, ok := h.engine.Get("ghost"); ok {
		t.Error("Get of unknown run should fail")
	}
	if len(h.engine.Runs()) != 1 {
		t.Error("Runs() wrong")
	}
	if run.Strategy().Name != "happy" {
		t.Error("Strategy() wrong")
	}
	h.drive(t, run)
}

func TestEngineMetricsInstrumentation(t *testing.T) {
	h := newHarness(t)
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(twoPhaseStrategy())
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	m := h.engine.Metrics()
	if m.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
	if len(m.Delays) == 0 {
		t.Error("no delays recorded")
	}
	h.engine.ResetMetrics()
	m = h.engine.Metrics()
	if m.Evaluations != 0 || len(m.Delays) != 0 || m.BusyTime != 0 {
		t.Error("ResetMetrics did not clear counters")
	}
}

func TestGotoChaining(t *testing.T) {
	h := newHarness(t)
	s := twoPhaseStrategy()
	// canary success skips straight to promote via goto to ab, whose
	// failure goes back to canary... use abort to terminate instead:
	// canary -> goto "ab"; ab failure -> abort.
	s.Phases[0].OnSuccess = Transition{Kind: TransitionGoto, Target: "ab"}
	s.Phases[1].OnFailure = Transition{Kind: TransitionAbort}
	// Healthy in canary threshold but failing in ab: set latency between
	// — impossible with one series. Instead: healthy all through; expect
	// promote via goto path.
	h.seedMetrics("response_time", "catalog", "v2", "", 10*time.Minute, 50)
	run, err := h.engine.Launch(s)
	if err != nil {
		t.Fatal(err)
	}
	h.drive(t, run)
	if run.Status() != StatusSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
	var sawGoto bool
	for _, ev := range run.Events() {
		if ev.Type == EventTransition && strings.Contains(ev.Detail, "goto ab") {
			sawGoto = true
		}
	}
	if !sawGoto {
		t.Error("goto transition not recorded")
	}
}

func TestParallelStrategies(t *testing.T) {
	h := newHarness(t)
	const n = 20
	runs := make([]*Run, 0, n)
	for i := 0; i < n; i++ {
		svc := "svc-" + string(rune('a'+i))
		s := &Strategy{
			Name: "strat-" + svc, Service: svc, Baseline: "v1", Candidate: "v2",
			Phases: []Phase{{
				Name: "canary", Practice: expmodel.PracticeCanary,
				Traffic:  TrafficSpec{CandidateWeight: 0.1},
				Duration: time.Minute,
				Checks: []Check{{
					Name: "latency", Metric: "response_time",
					Aggregation: metrics.AggMean, Upper: true, Threshold: 100,
					Interval: 5 * time.Second,
				}},
				OnSuccess: Transition{Kind: TransitionPromote},
			}},
		}
		h.seedMetrics("response_time", svc, "v2", "", 5*time.Minute, 50)
		run, err := h.engine.Launch(s)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		allDone := true
		for _, r := range runs {
			select {
			case <-r.Done():
			default:
				allDone = false
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parallel runs did not finish")
		}
		if d, ok := h.sim.NextDeadline(); ok {
			h.sim.AdvanceTo(d)
		}
		time.Sleep(200 * time.Microsecond)
	}
	for _, r := range runs {
		if r.Status() != StatusSucceeded {
			t.Errorf("run %s status = %v", r.Strategy().Name, r.Status())
		}
	}
}
