// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation sections, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark iteration regenerates the corresponding
// artifact end to end at a bench-sized configuration; the cmd/ tools
// run the same harnesses at full scale.
//
//	go test -bench=. -benchmem
package contexp_test

import (
	"testing"
	"time"

	"contexp/internal/bifrost"
	"contexp/internal/fenrir"
	"contexp/internal/health"
	"contexp/internal/study"
	"contexp/internal/traffic"
)

// --- Chapter 3: Fenrir (planning) ---

func benchEvalConfig() fenrir.EvalConfig {
	return fenrir.EvalConfig{Budget: 600, Runs: 2, Days: 14, Seed: 1}
}

func BenchmarkTable3_1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fenrir.Table3_1(benchEvalConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fenrir.EvalFigure3_3(benchEvalConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fenrir.EvalFigure3_4(benchEvalConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fenrir.EvalFigure3_5(benchEvalConfig(), []int{10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fenrir.EvalFigure3_6(benchEvalConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 3 ablations ---

func benchProblem(b *testing.B, n int, class fenrir.SampleSizeClass) *fenrir.Problem {
	b.Helper()
	profile, err := traffic.Generate(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 14,
		traffic.DefaultGeneratorConfig())
	if err != nil {
		b.Fatal(err)
	}
	exps, err := fenrir.GenerateExperiments(fenrir.GeneratorConfig{
		N: n, Class: class, Seed: 42, Horizon: profile.NumSlots(),
	})
	if err != nil {
		b.Fatal(err)
	}
	p := &fenrir.Problem{Experiments: exps, Profile: profile, Capacity: 0.8}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGAPopulationSize ablates the GA's population size (DESIGN.md
// decision 1): same evaluation budget, different exploration/
// exploitation balance.
func BenchmarkGAPopulationSize(b *testing.B) {
	p := benchProblem(b, 15, fenrir.SamplesMedium)
	for _, pop := range []int{20, 60, 120} {
		pop := pop
		b.Run(itoa(pop), func(b *testing.B) {
			ga := &fenrir.GeneticAlgorithm{PopulationSize: pop}
			var fitness float64
			for i := 0; i < b.N; i++ {
				_, stats := ga.Optimize(p, 1500, int64(i+1), nil)
				fitness += stats.BestFitness
			}
			b.ReportMetric(fitness/float64(b.N)/p.MaxFitness(), "fitness-frac")
		})
	}
}

// BenchmarkGARepairCrossover ablates the repairing crossover (DESIGN.md
// decision 2) against the paper's simple crossover.
func BenchmarkGARepairCrossover(b *testing.B) {
	p := benchProblem(b, 20, fenrir.SamplesMedium)
	for _, repair := range []bool{false, true} {
		repair := repair
		name := "simple"
		if repair {
			name = "repair"
		}
		b.Run(name, func(b *testing.B) {
			ga := &fenrir.GeneticAlgorithm{Repair: repair}
			var fitness float64
			for i := 0; i < b.N; i++ {
				_, stats := ga.Optimize(p, 1500, int64(i+1), nil)
				fitness += stats.BestFitness
			}
			b.ReportMetric(fitness/float64(b.N)/p.MaxFitness(), "fitness-frac")
		})
	}
}

// --- Chapter 4: Bifrost (execution) ---

func BenchmarkFigure4_6(b *testing.B) {
	cfg := bifrost.OverheadConfig{
		Requests:      200,
		ServiceTimeMs: 2,
		PhaseDuration: 300 * time.Millisecond,
		Seed:          1,
	}
	for i := 0; i < b.N; i++ {
		fig, err := bifrost.EvalFigure4_6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.OverheadMs(), "overhead-ms")
	}
}

func BenchmarkFigure4_8(b *testing.B) {
	cfg := bifrost.ScalingConfig{
		Points:            []int{1, 16},
		RunDuration:       300 * time.Millisecond,
		CheckInterval:     25 * time.Millisecond,
		ChecksPerStrategy: 5,
	}
	for i := 0; i < b.N; i++ {
		res, err := bifrost.EvalFigure4_7And4_8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].MeanDelayMs, "delay-ms-at-max")
	}
}

func BenchmarkFigure4_10(b *testing.B) {
	cfg := bifrost.ScalingConfig{
		Points:        []int{10, 100},
		RunDuration:   300 * time.Millisecond,
		CheckInterval: 25 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		res, err := bifrost.EvalFigure4_9And4_10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].MeanDelayMs, "delay-ms-at-max")
	}
}

// --- Chapter 5: health assessment (analysis) ---

func BenchmarkFigure5_6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := health.EvalFigure5_6(200, 1)
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, m := range fig.MeanByHeuristic() {
			if m > best {
				best = m
			}
		}
		b.ReportMetric(best, "best-ndcg5")
	}
}

func BenchmarkFigure5_8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := health.EvalFigure5_8(200, 1)
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, m := range fig.MeanByHeuristic() {
			if m > best {
				best = m
			}
		}
		b.ReportMetric(best, "best-ndcg5")
	}
}

func BenchmarkFigure5_9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := health.EvalFigure5_9([]int{500, 2000}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Points[len(fig.Points)-1]
		var worst time.Duration
		for _, d := range last.HeuristicTimes {
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(float64(worst)/1e6, "worst-heuristic-ms")
	}
}

func BenchmarkFigure5_10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := health.EvalFigure5_10(1000, []float64{0.05, 0.2}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 2: survey tables ---

func BenchmarkStudyTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pop := study.Generate(int64(i + 1))
		if out := pop.AllTables(); len(out) == 0 {
			b.Fatal("empty tables")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
